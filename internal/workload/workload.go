// Package workload synthesizes the profile streams the paper collects
// from SPEC CPU2000 binaries. Each of the seven benchmarks the evaluation
// uses (gcc, gzip, mcf, parser, vortex, vpr, bzip2) is modeled as a small
// parameter table — code regions and their execution shares, load-value
// mixtures, and memory-access components — calibrated to the
// characteristics the paper reports:
//
//   - gcc has the most distinct basic blocks and "seven distinct regions
//     ... where each region accounted for more than 10% of the
//     instructions executed" (Section 4.1);
//   - parser "has the largest number of load values" (Section 4.2);
//   - gzip's hot load-value ranges nest as [0,e] ⊂ [0,fe] ⊂ [0,3ffe] ⊂
//     [0,3fffe] plus two address-like bands near 0x11ffffffd and
//     0x12000fffc (Figure 5);
//   - vortex's value stream is dominated by the hot value 0 (Section 4.3);
//   - gcc's zero-valued loads concentrate in a few bands of the
//     0x11f000000–0x11fffffff data region (Figure 10).
//
// RAP never sees anything but the event stream, so reproducing these
// distributional shapes is what preserves the paper's results; see
// DESIGN.md for the substitution argument.
package workload

import (
	"fmt"
	"sort"
)

// Benchmark is one modeled SPEC program.
type Benchmark struct {
	Name string

	code  codeParams
	value []valueComponent
	loads []loadComponent
}

// codeParams describes a benchmark's code profile: the basic-block count,
// the PC layout, and the hot regions with their execution shares.
type codeParams struct {
	base      uint64 // PC of block 0
	blockSize uint64 // bytes per basic block (PC stride)
	numBlocks int    // distinct basic blocks
	regions   []codeRegion
}

// codeRegion is a contiguous range of basic blocks with an execution
// share. Blocks within a region are visited with Zipf popularity and
// sequential run bursts (loop bodies).
type codeRegion struct {
	startBlock int
	numBlocks  int
	weight     float64 // share of dynamic basic-block stream
	zipfExp    float64 // popularity skew within the region
}

// Regions returns the PC range and stream share of each modeled code
// region, hottest first — the ground truth the code-profile experiments
// compare RAP's findings against.
func (b Benchmark) Regions() []CodeRegionInfo {
	out := make([]CodeRegionInfo, 0, len(b.code.regions))
	for _, r := range b.code.regions {
		out = append(out, CodeRegionInfo{
			LoPC:   b.code.base + uint64(r.startBlock)*b.code.blockSize,
			HiPC:   b.code.base + uint64(r.startBlock+r.numBlocks)*b.code.blockSize - 1,
			Weight: r.weight,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

// CodeRegionInfo is the public description of a modeled code region.
type CodeRegionInfo struct {
	LoPC, HiPC uint64
	Weight     float64
}

// NumBlocks returns the benchmark's distinct basic-block count.
func (b Benchmark) NumBlocks() int { return b.code.numBlocks }

// All returns the seven modeled benchmarks in the paper's figure order.
func All() []Benchmark {
	return []Benchmark{gcc, gzip, mcf, parser, vortex, vpr, bzip2}
}

// Names returns the benchmark names in figure order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ByName looks a benchmark up by its SPEC name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// Code-layout constants: a 64-bit text segment base and the data-segment
// bands the paper's figures show (stack-like region at 0x11f..., heap at
// 0x120...).
const (
	textBase  = 0x0000000008048000 // 32-bit text segment: PCs fit a 32-bit profile universe
	blockSize = 16

	dataBand  = 0x000000011f000000 // Figure 10's zero-load band
	heapBase  = 0x0000000140000000
	stackBase = 0x000000011ff00000
)

var gcc = Benchmark{
	Name: "gcc",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 52000,
		// Seven regions each >10% of the stream (Section 4.1) plus a
		// diffuse 17% background over the whole text segment.
		regions: []codeRegion{
			{startBlock: 1200, numBlocks: 2600, weight: 0.14, zipfExp: 1.1},
			{startBlock: 6800, numBlocks: 1900, weight: 0.13, zipfExp: 1.1},
			{startBlock: 11000, numBlocks: 900, weight: 0.12, zipfExp: 1.2},
			{startBlock: 17500, numBlocks: 2100, weight: 0.12, zipfExp: 1.0},
			{startBlock: 26400, numBlocks: 1400, weight: 0.12, zipfExp: 1.1},
			{startBlock: 35200, numBlocks: 700, weight: 0.12, zipfExp: 1.3},
			{startBlock: 44100, numBlocks: 1100, weight: 0.12, zipfExp: 1.2},
		},
	},
	value: []valueComponent{
		zeroC(0.11),
		zipfC(0.16, 1, 250, 1.2),
		uniC(0.14, 0x100, 0x7fff),
		ptrC(0.17, dataBand, 0x00ffffff),
		ptrC(0.13, heapBase, 0x03ffffff),
		uniC(0.20, 0, 0xffffffff),
		uniC(0.09, 0, ^uint64(0)>>2),
	},
	// Load components follow the miss-value-locality structure Figure 9
	// reports: in-cache traffic (stack frames, hot globals) returns wide
	// scattered values, while miss-heavy traffic (pool scans, pointer
	// chases) returns zeros, small counters, and tight pointer bands.
	loads: []loadComponent{
		// Stack frame traffic: hits, wide mixed values, few zeros.
		{weight: 0.47, addr: stackAddr(stackBase, 1<<14), zeroProb: 0.05,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
		// RTL pool sequential scans over the 0x11f000000 band: Figure
		// 10's dominant zero-load source ("about 38% chance of being a
		// zero" in the hot band).
		{weight: 0.10, addr: scanAddr(0x11f000000, 0x00d00000, 64), zeroProb: 0.30,
			value: []valueComponent{uniC(1, 0, 0xffff)}},
		{weight: 0.16, addr: scanAddr(0x11fd00000, 0x00280000, 64), zeroProb: 0.38,
			value: []valueComponent{zipfC(1, 1, 100, 1.2)}},
		{weight: 0.05, addr: chaseAddr(0x11fec0000, 0x0003ffff), zeroProb: 0.45,
			value: []valueComponent{zipfC(1, 1, 1000, 1.1)}},
		// Heap pointer chasing: DL2 misses, tight freelist pointers.
		{weight: 0.12, addr: chaseAddr(heapBase, 0x07ffffff), zeroProb: 0.30,
			value: []valueComponent{ptrC(1, heapBase, 0x000fffff)}},
		// Hot globals: hits, scattered word values.
		{weight: 0.10, addr: globalAddr(textBase+0x01000000, 512), zeroProb: 0.10,
			value: []valueComponent{uniC(1, 0, 0xffffffff)}},
	},
}

var gzip = Benchmark{
	Name: "gzip",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 4200,
		regions: []codeRegion{
			{startBlock: 300, numBlocks: 240, weight: 0.38, zipfExp: 1.1},  // deflate inner loop
			{startBlock: 1450, numBlocks: 180, weight: 0.27, zipfExp: 1.2}, // longest_match
			{startBlock: 2600, numBlocks: 300, weight: 0.16, zipfExp: 1.0}, // inflate
		},
	},
	// Calibrated to Figure 5's hot load-value tree (ε=1%, hot ≥ 10%).
	value: []valueComponent{
		zipfC(0.135, 0, 15, 1.1),                 // [0, e]   ~13.6%
		uniC(0.167, 0x0, 0xfe),                   // [0, fe]  +16.7%
		uniC(0.113, 0x100, 0x3ffe),               // [0,3ffe] +11.3%
		uniC(0.228, 0x4000, 0x3fffe),             // [0,3fffe]+22.8%
		uniC(0.100, 0x11ffffffd, 0x12000fffb),    // band 1    10.0%
		uniC(0.122, 0x12000fffc, 0x12001fffa),    // band 2    12.2%
		uniC(0.124, 0x40000, 0x3ffffffffffffffe), // diffuse   12.4%
		uniC(0.011, 0, ^uint64(0)),               // root-only  0.9%
	},
	loads: []loadComponent{
		{weight: 0.45, addr: stackAddr(stackBase, 1<<13), zeroProb: 0.05,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
		// Window scan: sequential misses carrying byte values.
		{weight: 0.25, addr: scanAddr(heapBase, 0x00040000, 64), zeroProb: 0.08,
			value: []valueComponent{uniC(1, 0, 0xfe)}},
		// Hash-chain chasing: scattered misses, tight pointer band.
		{weight: 0.20, addr: chaseAddr(heapBase+0x00100000, 0x0000ffff), zeroProb: 0.15,
			value: []valueComponent{ptrC(1, 0x11ffffffd, 0x1ffff)}},
		{weight: 0.10, addr: globalAddr(textBase+0x00200000, 1024), zeroProb: 0.10,
			value: []valueComponent{uniC(1, 0, 0xffffffff)}},
	},
}

var mcf = Benchmark{
	Name: "mcf",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 1600,
		regions: []codeRegion{
			{startBlock: 200, numBlocks: 120, weight: 0.47, zipfExp: 1.2}, // price_out_impl
			{startBlock: 700, numBlocks: 200, weight: 0.24, zipfExp: 1.0}, // refresh_neighbour
		},
	},
	value: []valueComponent{
		zeroC(0.14),
		ptrC(0.38, heapBase, 0x0fffffff), // node/arc pointers
		uniC(0.22, 0, 0xffff),            // costs and flows
		zipfC(0.12, 1, 64, 1.3),
		uniC(0.14, 0, 0xffffffffff),
	},
	loads: []loadComponent{
		// Network-simplex pointer chasing over a huge arena: miss-heavy,
		// values split between a tight node-pool band and small costs.
		{weight: 0.50, addr: chaseAddr(heapBase, 0x0fffffff), zeroProb: 0.25,
			value: []valueComponent{ptrC(0.5, heapBase, 0x000fffff), uniC(0.5, 0, 0xffff)}},
		{weight: 0.15, addr: scanAddr(heapBase+0x10000000, 0x01000000, 64), zeroProb: 0.22,
			value: []valueComponent{uniC(1, 0, 0xffff)}},
		{weight: 0.35, addr: stackAddr(stackBase, 1<<12), zeroProb: 0.08,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
	},
}

var parser = Benchmark{
	Name: "parser",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 14000,
		regions: []codeRegion{
			{startBlock: 900, numBlocks: 800, weight: 0.22, zipfExp: 1.1},
			{startBlock: 3600, numBlocks: 650, weight: 0.18, zipfExp: 1.1},
			{startBlock: 7100, numBlocks: 400, weight: 0.14, zipfExp: 1.2},
			{startBlock: 10800, numBlocks: 900, weight: 0.12, zipfExp: 1.0},
		},
	},
	// "parser ... has the largest number of load values": a huge low-skew
	// Zipf over dictionary handles plus wide uniform components.
	value: []valueComponent{
		zipfC(0.30, 0x1000, 600000, 1.06),
		zeroC(0.04),
		uniC(0.14, 0, 0xffffff),
		ptrC(0.16, heapBase, 0x1fffffff),
		uniC(0.36, 0, 0xffffffffffff),
	},
	loads: []loadComponent{
		{weight: 0.35, addr: chaseAddr(heapBase, 0x1fffffff), zeroProb: 0.20,
			value: []valueComponent{zipfC(1, 0x1000, 600000, 1.02)}},
		{weight: 0.50, addr: stackAddr(stackBase, 1<<13), zeroProb: 0.07,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
		{weight: 0.15, addr: scanAddr(heapBase+0x20000000, 0x00800000, 64), zeroProb: 0.18,
			value: []valueComponent{zipfC(1, 0, 1<<16, 1.05)}},
	},
}

var vortex = Benchmark{
	Name: "vortex",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 32000,
		regions: []codeRegion{
			{startBlock: 2100, numBlocks: 1500, weight: 0.24, zipfExp: 1.1},
			{startBlock: 9400, numBlocks: 1100, weight: 0.19, zipfExp: 1.1},
			{startBlock: 19800, numBlocks: 1700, weight: 0.15, zipfExp: 1.0},
		},
	},
	// Dominated by the hot value 0 (the source of vortex's ~20% max
	// percent error in Figure 8 right). The zero flood arrives in the
	// second half of the run (index 2 = late activation window) with no
	// early component near the low value space, so the path to the
	// singleton [0,0] is built late and strands ~ε·n/H per level at its
	// ancestors — the exact failure mode the paper attributes the vortex
	// outlier to.
	value: []valueComponent{
		uniC(0.20, 0x10000, 0x3fffff),         // record fields (always)
		zipfC(0.15, 0x100000000, 4096, 1.2),   // object handles (first half)
		zeroC(0.24),                           // null flood (second half)
		ptrC(0.21, heapBase, 0x00ffffff),      // heap pointers (always)
		uniC(0.20, 0x100000000, 0x10ffffffff), // wide keys (first half)
	},
	loads: []loadComponent{
		{weight: 0.40, addr: chaseAddr(heapBase, 0x0fffffff), zeroProb: 0.35,
			value: []valueComponent{uniC(1, 0, 0xffff)}},
		{weight: 0.45, addr: stackAddr(stackBase, 1<<14), zeroProb: 0.10,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
		{weight: 0.15, addr: scanAddr(heapBase+0x10000000, 0x02000000, 64), zeroProb: 0.30,
			value: []valueComponent{zipfC(1, 0, 4096, 1.2)}},
	},
}

var vpr = Benchmark{
	Name: "vpr",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 7200,
		regions: []codeRegion{
			{startBlock: 450, numBlocks: 380, weight: 0.33, zipfExp: 1.1},  // try_swap
			{startBlock: 2300, numBlocks: 260, weight: 0.25, zipfExp: 1.2}, // get_net_cost
			{startBlock: 4700, numBlocks: 500, weight: 0.13, zipfExp: 1.0},
		},
	},
	// Placement cost arithmetic: float bit patterns cluster in a narrow
	// exponent band.
	value: []valueComponent{
		uniC(0.30, 0x3f800000, 0x3fbfffff), // float bit patterns cluster tightly
		zeroC(0.12),
		zipfC(0.25, 1, 2048, 1.1),
		ptrC(0.15, heapBase, 0x00ffffff),
		uniC(0.18, 0, 0xffffffffff),
	},
	loads: []loadComponent{
		{weight: 0.20, addr: scanAddr(heapBase, 0x00400000, 64), zeroProb: 0.12,
			value: []valueComponent{zipfC(1, 1, 4096, 1.1)}},
		{weight: 0.50, addr: stackAddr(stackBase, 1<<13), zeroProb: 0.08,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
		{weight: 0.30, addr: chaseAddr(heapBase+0x01000000, 0x003fffff), zeroProb: 0.16,
			value: []valueComponent{ptrC(1, heapBase, 0x000fffff)}},
	},
}

var bzip2 = Benchmark{
	Name: "bzip2",
	code: codeParams{
		base: textBase, blockSize: blockSize, numBlocks: 4800,
		regions: []codeRegion{
			{startBlock: 500, numBlocks: 210, weight: 0.42, zipfExp: 1.2},  // sortIt inner loops
			{startBlock: 2100, numBlocks: 320, weight: 0.31, zipfExp: 1.1}, // generateMTFValues
		},
	},
	value: []valueComponent{
		zipfC(0.30, 0, 256, 1.05), // byte alphabet
		zeroC(0.10),
		uniC(0.26, 0, 0xfffff), // suffix-array indices
		uniC(0.20, 0, 0xffffffff),
		uniC(0.14, 0, 0xffffffffffff),
	},
	loads: []loadComponent{
		{weight: 0.30, addr: scanAddr(heapBase, 0x00100000, 64), zeroProb: 0.06,
			value: []valueComponent{uniC(1, 0, 0xfe)}},
		{weight: 0.25, addr: chaseAddr(heapBase+0x00200000, 0x000fffff), zeroProb: 0.10,
			value: []valueComponent{uniC(1, 0, 0xffff)}},
		{weight: 0.45, addr: stackAddr(stackBase, 1<<12), zeroProb: 0.07,
			value: []valueComponent{uniC(1, 0, 0xffffffffff)}},
	},
}
