package workload

import (
	"rap/internal/stats"
	"rap/internal/trace"
)

// codeGen produces a benchmark's dynamic basic-block stream: regions are
// chosen by their execution share and a loop head within the region by
// Zipf popularity; control then iterates a short loop body (sequential
// blocks re-executed a geometric number of times) before the next pick.
// The loop structure is what gives code streams the high short-term
// locality that the Stage-0 coalescing buffer exploits (the paper's
// "factor of 10" compression for code profiling).
type codeGen struct {
	bench Benchmark
	rng   *stats.SplitMix64

	pickRegion *phasedDiscrete
	regionZipf []*stats.Zipf
	background *stats.Zipf // diffuse residue over the whole text segment

	loopStart int // first block of the current loop body
	loopLen   int
	pos       int // next block offset within the body
	itersLeft int
}

const (
	meanLoopLen   = 4  // mean blocks per loop body
	meanLoopIters = 10 // mean iterations per loop visit
	// meanBurst is the mean events emitted per region pick, used to scale
	// the phase horizon from events to picks.
	meanBurst = meanLoopLen * meanLoopIters
)

func newCodeGen(b Benchmark, seed, runLength uint64) *codeGen {
	rng := stats.NewSplitMix64(seed ^ hashName(b.Name) ^ 0xC0DE)
	weights := make([]float64, len(b.code.regions)+1)
	windows := make([][2]float64, len(b.code.regions)+1)
	total := 0.0
	zipfs := make([]*stats.Zipf, len(b.code.regions))
	for i, r := range b.code.regions {
		weights[i] = r.weight
		windows[i] = phaseWindow(i)
		total += r.weight
		zipfs[i] = stats.NewZipf(rng.Split(), r.numBlocks, r.zipfExp)
	}
	// The diffuse background executes for the whole run.
	weights[len(b.code.regions)] = 1 - total
	windows[len(b.code.regions)] = [2]float64{0, 1}
	return &codeGen{
		bench:      b,
		rng:        rng,
		pickRegion: newPhasedDiscreteWindows(rng.Split(), weights, windows, runLength/meanBurst),
		regionZipf: zipfs,
		background: stats.NewZipf(rng.Split(), b.code.numBlocks, 1.01),
	}
}

// nextBlock returns the next dynamic basic-block index.
func (g *codeGen) nextBlock() int {
	for g.itersLeft == 0 {
		i := g.pickRegion.Index()
		if i < len(g.bench.code.regions) {
			r := g.bench.code.regions[i]
			g.loopStart = r.startBlock + g.regionZipf[i].Rank()
		} else {
			g.loopStart = g.background.Rank()
		}
		g.loopLen = 1 + stats.Geometric(g.rng, 1.0/float64(meanLoopLen))
		if max := g.bench.code.numBlocks - g.loopStart; g.loopLen > max {
			g.loopLen = max
		}
		g.itersLeft = 1 + stats.Geometric(g.rng, 1.0/float64(meanLoopIters))
		g.pos = 0
	}
	blk := g.loopStart + g.pos
	g.pos++
	if g.pos >= g.loopLen {
		g.pos = 0
		g.itersLeft--
	}
	return blk
}

// pc converts a block index to its program counter.
func (b Benchmark) pc(block int) uint64 {
	return b.code.base + uint64(block)*b.code.blockSize
}

// Code returns an endless basic-block PC stream for the benchmark.
// runLength sets the program-phase horizon (0 disables phasing).
func (b Benchmark) Code(seed, runLength uint64) trace.Source {
	g := newCodeGen(b, seed, runLength)
	return trace.FuncSource(func() (uint64, bool) {
		return b.pc(g.nextBlock()), true
	})
}

// NarrowOperandPCs returns a PC stream restricted to instructions with
// narrow operands (< 2^maxBits), the Section 4.4 narrow-operand profile:
// each block has a fixed narrow-operand propensity, so narrow operations
// concentrate in specific code regions (the paper's flow.c observation).
func (b Benchmark) NarrowOperandPCs(seed uint64, maxBits int, runLength uint64) trace.Source {
	g := newCodeGen(b, seed, runLength)
	vals := newValueSampler(stats.NewSplitMix64(seed^hashName(b.Name)^0x0B0E), b.value, runLength)
	propensity := stats.NewSplitMix64(hashName(b.Name) ^ 0x9A77)
	// Per-block propensity in [0.05, 0.95], fixed per block.
	blockProp := make([]float64, b.code.numBlocks)
	for i := range blockProp {
		blockProp[i] = 0.05 + 0.9*propensity.Float64()*propensity.Float64()
	}
	limit := uint64(1) << maxBits
	rng := stats.NewSplitMix64(seed ^ 0x3A3A)
	return trace.FuncSource(func() (uint64, bool) {
		for {
			blk := g.nextBlock()
			// The block produces a narrow operand if its sampled value is
			// narrow or its propensity fires.
			if vals.sample() < limit || rng.Float64() < blockProp[blk]*0.2 {
				return b.pc(blk), true
			}
		}
	})
}
