package span

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// Header is the W3C Trace Context header name carried on HTTP requests
// and stamped back on traced responses.
const Header = "traceparent"

// version 00 traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>.
const tpLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// flagSampled is the only trace-flag bit version 00 defines.
const flagSampled = 0x01

// Encode renders the context as a version-00 W3C traceparent value.
func Encode(c Context) string {
	flags := byte(0)
	if c.Sampled {
		flags = flagSampled
	}
	return fmt.Sprintf("00-%s-%s-%02x", c.Trace, c.Span, flags)
}

// Decode parses a traceparent value. Per the W3C processing rules it
// accepts any two-digit version except the invalid ff, requires the
// version-00 field layout, and rejects all-zero trace or parent IDs.
func Decode(v string) (Context, error) {
	v = strings.TrimSpace(v)
	if len(v) < tpLen {
		return Context{}, fmt.Errorf("span: traceparent too short (%d < %d)", len(v), tpLen)
	}
	if len(v) > tpLen && v[tpLen] != '-' {
		// Future versions may append fields, but only after another dash.
		return Context{}, fmt.Errorf("span: malformed traceparent %q", v)
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return Context{}, fmt.Errorf("span: malformed traceparent %q", v)
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(v[0:2])); err != nil {
		return Context{}, fmt.Errorf("span: bad traceparent version: %v", err)
	}
	if ver[0] == 0xff {
		return Context{}, fmt.Errorf("span: invalid traceparent version ff")
	}
	var c Context
	if _, err := hex.Decode(c.Trace[:], []byte(v[3:35])); err != nil {
		return Context{}, fmt.Errorf("span: bad trace-id: %v", err)
	}
	if _, err := hex.Decode(c.Span[:], []byte(v[36:52])); err != nil {
		return Context{}, fmt.Errorf("span: bad parent-id: %v", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(v[53:55])); err != nil {
		return Context{}, fmt.Errorf("span: bad trace-flags: %v", err)
	}
	if !c.Valid() {
		return Context{}, fmt.Errorf("span: all-zero trace or parent id in %q", v)
	}
	c.Sampled = flags[0]&flagSampled != 0
	return c, nil
}

// FromRequest extracts a propagated trace context from the request's
// traceparent header. ok is false when the header is absent or invalid —
// per the spec an invalid header is ignored, not an error to the caller.
func FromRequest(r *http.Request) (Context, bool) {
	v := r.Header.Get(Header)
	if v == "" {
		return Context{}, false
	}
	c, err := Decode(v)
	if err != nil {
		return Context{}, false
	}
	return c, true
}

// Inject stamps the context on an outbound header set (a client request,
// or a server response echoing the handled span's identity).
func Inject(h http.Header, c Context) {
	h.Set(Header, Encode(c))
}
