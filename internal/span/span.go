// Package span is the zero-dependency request-scoped tracing subsystem of
// the profiler: trace/span identifiers, parent links, wall-clock timing
// with attributes, a bounded lock-free span ring, and W3C traceparent
// propagation (see propagate.go) so one operation — a snapshot shipment, a
// /v1 query — can be followed across processes.
//
// The design mirrors the obs package's split between hot-path updates and
// scrape-time collection. Starting a span is an allocation and a couple of
// atomic increments; the keep/drop decision is deferred to End, where the
// duration is known, so the sampler can combine three policies:
//
//   - head-based rate: 1 in SampleRate roots is recorded with all of its
//     children, giving an unbiased latency census at bounded cost;
//   - slow-op promotion: any span whose duration reaches SlowThreshold is
//     recorded (and logged in the slow-op ring) even when its trace lost
//     the head coin — tail latency is exactly what sampling would hide;
//   - forced recording: while the Force hook reports true (the daemon
//     wires it to "any alert firing"), every span is recorded, so the
//     minutes that matter are traced at 100%.
//
// Recorded spans land in a fixed-size ring of atomic pointers — writers
// never block each other or readers — and are exported as JSONL over
// /spans, in diagnostic bundles, and to offline analysis via rapdiag.
package span

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rap/internal/obs"
)

// TraceID is the 16-byte W3C trace identifier shared by every span of one
// operation.
type TraceID [16]byte

// IsZero reports whether the trace ID is the invalid all-zeros value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits, the traceparent form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the span ID is the invalid all-zeros value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits, the traceparent form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Context identifies one position in one trace: enough to parent a child
// span or to propagate the trace across a process boundary. Sampled
// carries the head-based decision with the trace, so a downstream process
// records the spans an upstream one decided to keep.
type Context struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero — the W3C validity rule.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// Attr is one key/value annotation on a span. Values are strings; callers
// format numbers themselves (spans are for humans and JSONL, not math).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed operation within a trace. It is created by a Tracer,
// annotated with SetAttr, and finished exactly once with End; only End
// decides whether the span is recorded. A nil *Span is a valid no-op
// receiver for every method, so call sites need no tracer-enabled checks.
type Span struct {
	tr     *Tracer
	ctx    Context
	parent SpanID
	name   string
	start  time.Time
	forced bool // recording forced at start (alert firing)

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Record is the exported, JSON-stable form of a finished span — the
// /spans JSONL row.
type Record struct {
	TraceID    string `json:"trace_id"`
	SpanID     string `json:"span_id"`
	ParentID   string `json:"parent_id,omitempty"`
	Name       string `json:"name"`
	StartNano  int64  `json:"start_unix_nano"`
	DurationNs int64  `json:"duration_ns"`
	Sampled    bool   `json:"sampled"`        // won the head coin (vs slow/forced promotion)
	Slow       bool   `json:"slow,omitempty"` // reached the slow-op threshold
	Attrs      []Attr `json:"attrs,omitempty"`
}

// Options configures a Tracer. Zero values select the defaults noted per
// field.
type Options struct {
	// SampleRate keeps 1 in SampleRate root spans (with their children).
	// 1 keeps everything; 0 selects the default 100 (1%).
	SampleRate uint64
	// Capacity is the span ring size. Default 4096.
	Capacity int
	// SlowCapacity is the slow-op log size. Default 64.
	SlowCapacity int
	// SlowThreshold promotes any span at least this long into the ring and
	// the slow-op log regardless of sampling. 0 selects the default 100ms;
	// negative disables promotion.
	SlowThreshold time.Duration
	// Force, when set and returning true, records every span finished
	// while it holds — the "always-on for ops that trip an alert" policy.
	// It is consulted once per root start and once per span end; it must
	// be cheap and safe for concurrent use.
	Force func() bool
}

func (o Options) withDefaults() Options {
	if o.SampleRate == 0 {
		o.SampleRate = 100
	}
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.SlowCapacity <= 0 {
		o.SlowCapacity = 64
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 100 * time.Millisecond
	}
	return o
}

// Tracer creates spans and owns the recorded-span ring. All methods are
// safe for concurrent use.
type Tracer struct {
	opt   Options
	roots atomic.Uint64 // head-based sampling counter

	// ring is the bounded lock-free store of finished, kept spans: a
	// writer claims the next slot with one atomic add and publishes the
	// record with one atomic store. Readers see a consistent recent
	// window without ever blocking a writer; a torn window (a slot being
	// overwritten mid-read) yields either the old or the new record,
	// never garbage.
	ring []atomic.Pointer[Record]
	pos  atomic.Uint64

	slowMu   sync.Mutex
	slowLog  []Record // ring, oldest at slowNext once full
	slowNext int

	started  atomic.Uint64
	recorded atomic.Uint64
	slow     atomic.Uint64
	forced   atomic.Uint64
}

// New builds a Tracer.
func New(opt Options) *Tracer {
	opt = opt.withDefaults()
	return &Tracer{
		opt:  opt,
		ring: make([]atomic.Pointer[Record], opt.Capacity),
	}
}

// SampleRate returns the configured 1-in-N head sampling rate.
func (tr *Tracer) SampleRate() uint64 { return tr.opt.SampleRate }

// SlowThreshold returns the slow-op promotion threshold.
func (tr *Tracer) SlowThreshold() time.Duration { return tr.opt.SlowThreshold }

// newIDs returns a fresh random trace ID. math/rand/v2's global generator
// is goroutine-safe and unseedable-from-outside, which is exactly right:
// IDs need uniqueness, not secrecy.
func newTraceID() TraceID {
	var t TraceID
	putU64(t[:8], rand.Uint64())
	putU64(t[8:], rand.Uint64())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for {
		putU64(s[:], rand.Uint64())
		if !s.IsZero() {
			return s
		}
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(7-i)))
	}
}

// StartRoot begins a new trace: a root span with a fresh trace ID. The
// head-based sampling decision is taken here and inherited by children.
func (tr *Tracer) StartRoot(name string) *Span {
	return tr.StartRootAt(name, time.Now())
}

// StartRootAt is StartRoot with an explicit start time, for call sites
// that stamped the clock before deciding to trace (queue enqueue).
func (tr *Tracer) StartRootAt(name string, start time.Time) *Span {
	if tr == nil {
		return nil
	}
	tr.started.Add(1)
	n := tr.roots.Add(1)
	forced := tr.opt.Force != nil && tr.opt.Force()
	return &Span{
		tr: tr,
		ctx: Context{
			Trace:   newTraceID(),
			Span:    newSpanID(),
			Sampled: n%tr.opt.SampleRate == 0,
		},
		name:   name,
		start:  start,
		forced: forced,
	}
}

// StartChild begins a span inside an existing trace — a local parent's or
// one propagated from another process via traceparent. The parent's
// sampled flag is inherited: a sampled trace keeps all of its spans.
func (tr *Tracer) StartChild(parent Context, name string) *Span {
	return tr.StartChildAt(parent, name, time.Now())
}

// StartChildAt is StartChild with an explicit start time, so a span can
// cover an interval that began before the call (queue wait).
func (tr *Tracer) StartChildAt(parent Context, name string, start time.Time) *Span {
	if tr == nil {
		return nil
	}
	tr.started.Add(1)
	return &Span{
		tr: tr,
		ctx: Context{
			Trace:   parent.Trace,
			Span:    newSpanID(),
			Sampled: parent.Sampled,
		},
		parent: parent.Span,
		name:   name,
		start:  start,
	}
}

// Context returns the span's trace position, for parenting children or
// encoding a traceparent. The zero Context is returned from a nil span.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// Sampled reports whether this span's trace won the head-based coin (or
// recording was forced at start). Call sites use it to skip work that only
// matters for kept traces (extra attributes, stat deltas).
func (s *Span) Sampled() bool {
	if s == nil {
		return false
	}
	return s.ctx.Sampled || s.forced
}

// SetAttr annotates the span. Safe to call concurrently with End (the
// attribute may or may not make the recorded span, as with any race).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End finishes the span at time.Now.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt finishes the span at the given time and applies the recording
// decision: kept when the trace is sampled, recording is forced (at start
// or right now), or the span reached the slow-op threshold. Later calls
// are no-ops.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	tr := s.tr
	dur := end.Sub(s.start)
	slow := tr.opt.SlowThreshold > 0 && dur >= tr.opt.SlowThreshold
	forced := s.forced || (tr.opt.Force != nil && tr.opt.Force())
	if !s.ctx.Sampled && !forced && !slow {
		return
	}
	rec := &Record{
		TraceID:    s.ctx.Trace.String(),
		SpanID:     s.ctx.Span.String(),
		Name:       s.name,
		StartNano:  s.start.UnixNano(),
		DurationNs: dur.Nanoseconds(),
		Sampled:    s.ctx.Sampled,
		Slow:       slow,
		Attrs:      attrs,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	tr.recorded.Add(1)
	if forced && !s.ctx.Sampled {
		tr.forced.Add(1)
	}
	i := tr.pos.Add(1) - 1
	tr.ring[i%uint64(len(tr.ring))].Store(rec)
	if slow {
		tr.slow.Add(1)
		tr.slowMu.Lock()
		if len(tr.slowLog) < tr.opt.SlowCapacity {
			tr.slowLog = append(tr.slowLog, *rec)
		} else {
			tr.slowLog[tr.slowNext] = *rec
			tr.slowNext = (tr.slowNext + 1) % len(tr.slowLog)
		}
		tr.slowMu.Unlock()
	}
}

// Started returns the total spans started.
func (tr *Tracer) Started() uint64 { return tr.started.Load() }

// Recorded returns the total spans kept in the ring (including ones the
// ring has since overwritten).
func (tr *Tracer) Recorded() uint64 { return tr.recorded.Load() }

// Evicted returns how many recorded spans the ring has overwritten.
func (tr *Tracer) Evicted() uint64 {
	if n := tr.pos.Load(); n > uint64(len(tr.ring)) {
		return n - uint64(len(tr.ring))
	}
	return 0
}

// Spans returns the retained spans ordered oldest-first by start time.
// The read is lock-free: a concurrent writer may replace a slot mid-scan,
// yielding its old or new record — both are real spans.
func (tr *Tracer) Spans() []Record {
	out := make([]Record, 0, len(tr.ring))
	for i := range tr.ring {
		if r := tr.ring[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNano < out[j].StartNano })
	return out
}

// SlowOps returns the slow-op log oldest-first: every retained span that
// reached the slow threshold, regardless of sampling.
func (tr *Tracer) SlowOps() []Record {
	tr.slowMu.Lock()
	defer tr.slowMu.Unlock()
	out := make([]Record, 0, len(tr.slowLog))
	out = append(out, tr.slowLog[tr.slowNext:]...)
	out = append(out, tr.slowLog[:tr.slowNext]...)
	return out
}

// WriteJSONL writes the retained spans oldest-first, one JSON object per
// line — the bundle and offline-analysis format.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range tr.Spans() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP exposes the span ring as application/jsonl. Query params:
// ?trace=<32 hex> filters to one trace, ?name=<prefix> to a span-name
// prefix, ?slow=1 to slow-promoted spans, ?limit=N caps the newest rows.
func (tr *Tracer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spans := tr.Spans()
	if t := q.Get("trace"); t != "" {
		kept := spans[:0]
		for _, s := range spans {
			if s.TraceID == t {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if p := q.Get("name"); p != "" {
		kept := spans[:0]
		for _, s := range spans {
			if len(s.Name) >= len(p) && s.Name[:len(p)] == p {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if q.Get("slow") == "1" {
		kept := spans[:0]
		for _, s := range spans {
			if s.Slow {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", ls), http.StatusBadRequest)
			return
		}
		if n < len(spans) {
			spans = spans[len(spans)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.Header().Set("X-Span-Recorded", strconv.FormatUint(tr.Recorded(), 10))
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return
		}
	}
}

// Register exports the tracer's self-metrics on reg.
func (tr *Tracer) Register(reg *obs.Registry) {
	reg.CounterFunc("rap_span_started_total", "Spans started (before any sampling decision).",
		func() float64 { return float64(tr.started.Load()) })
	reg.CounterFunc("rap_span_recorded_total", "Spans kept in the span ring (head-sampled, slow-promoted, or forced).",
		func() float64 { return float64(tr.recorded.Load()) })
	reg.CounterFunc("rap_span_slow_total", "Spans promoted for reaching the slow-op threshold.",
		func() float64 { return float64(tr.slow.Load()) })
	reg.CounterFunc("rap_span_forced_total", "Unsampled spans recorded because the force hook (alerts firing) held.",
		func() float64 { return float64(tr.forced.Load()) })
	reg.CounterFunc("rap_span_evicted_total", "Recorded spans the ring overwrote before any export read them.",
		func() float64 { return float64(tr.Evicted()) })
	reg.GaugeFunc("rap_span_sample_rate", "Configured head sampling rate: 1 in this many root spans is kept.",
		func() float64 { return float64(tr.opt.SampleRate) })
}
