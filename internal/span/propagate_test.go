package span

import (
	"net/http/httptest"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := New(Options{SampleRate: 1, SlowThreshold: -1})
	s := tr.StartRoot("op")
	defer s.End()
	c := s.Context()
	v := Encode(c)
	if len(v) != tpLen {
		t.Fatalf("encoded length %d, want %d: %q", len(v), tpLen, v)
	}
	got, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip %+v != %+v", got, c)
	}
}

func TestDecodeKnownVector(t *testing.T) {
	// The W3C spec's own example value.
	v := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	c, err := Decode(v)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace %s", c.Trace)
	}
	if c.Span.String() != "00f067aa0ba902b7" {
		t.Fatalf("span %s", c.Span)
	}
	if !c.Sampled {
		t.Fatal("sampled flag lost")
	}
	if Encode(c) != v {
		t.Fatalf("re-encode %q", Encode(c))
	}

	unsampled, err := Decode("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil {
		t.Fatal(err)
	}
	if unsampled.Sampled {
		t.Fatal("flags 00 decoded as sampled")
	}
}

func TestDecodeFutureVersionAndTrailing(t *testing.T) {
	// Higher versions with extra dash-separated fields must still parse
	// the version-00 prefix.
	c, err := Decode("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra-stuff")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Sampled || c.Trace.IsZero() {
		t.Fatalf("future-version decode %+v", c)
	}
}

func TestDecodeRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // invalid version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",  // bad flags hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b701",   // shifted fields
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // junk without dash
	}
	for _, v := range bad {
		if _, err := Decode(v); err == nil {
			t.Fatalf("Decode(%q) accepted", v)
		}
	}
}

func TestHTTPInjectAndFromRequest(t *testing.T) {
	tr := New(Options{SampleRate: 1, SlowThreshold: -1})
	s := tr.StartRoot("client")
	defer s.End()

	req := httptest.NewRequest("GET", "/v1/estimate", nil)
	Inject(req.Header, s.Context())
	got, ok := FromRequest(req)
	if !ok || got != s.Context() {
		t.Fatalf("FromRequest = %+v, %v", got, ok)
	}

	// Absent and invalid headers are ignored, not errors.
	if _, ok := FromRequest(httptest.NewRequest("GET", "/", nil)); ok {
		t.Fatal("absent header reported ok")
	}
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(Header, "garbage")
	if _, ok := FromRequest(req); ok {
		t.Fatal("invalid header reported ok")
	}
}
