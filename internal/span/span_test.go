package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rap/internal/obs"
)

func TestIDsNonZeroAndDistinct(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		tid, sid := newTraceID(), newSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("generated zero id")
		}
		if seenT[tid] || seenS[sid] {
			t.Fatal("duplicate id in 1000 draws")
		}
		seenT[tid], seenS[sid] = true, true
	}
}

func TestHeadSamplingRate(t *testing.T) {
	tr := New(Options{SampleRate: 4, SlowThreshold: -1})
	sampled := 0
	for i := 0; i < 100; i++ {
		s := tr.StartRoot("op")
		if s.Sampled() {
			sampled++
		}
		s.End()
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 sampling kept %d of 100", sampled)
	}
	if got := len(tr.Spans()); got != 25 {
		t.Fatalf("ring holds %d, want 25", got)
	}
}

func TestChildInheritsTraceAndSampling(t *testing.T) {
	tr := New(Options{SampleRate: 1, SlowThreshold: -1})
	root := tr.StartRoot("parent")
	child := tr.StartChild(root.Context(), "child")
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child not in parent trace")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child reused parent span id")
	}
	if !child.Sampled() {
		t.Fatal("child did not inherit sampled flag")
	}
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var childRec *Record
	for i := range spans {
		if spans[i].Name == "child" {
			childRec = &spans[i]
		}
	}
	if childRec == nil || childRec.ParentID != root.Context().Span.String() {
		t.Fatalf("child record missing or missing parent link: %+v", childRec)
	}
}

func TestSlowOpPromotion(t *testing.T) {
	tr := New(Options{SampleRate: 1 << 60, SlowThreshold: 10 * time.Millisecond})
	start := time.Now()

	fast := tr.StartRootAt("fast", start)
	fast.EndAt(start.Add(time.Millisecond))

	slow := tr.StartRootAt("slow", start)
	slow.SetAttr("stage", "apply")
	slow.EndAt(start.Add(50 * time.Millisecond))

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "slow" || !spans[0].Slow {
		t.Fatalf("want only the slow span promoted, got %+v", spans)
	}
	if spans[0].DurationNs != (50 * time.Millisecond).Nanoseconds() {
		t.Fatalf("duration %d", spans[0].DurationNs)
	}
	ops := tr.SlowOps()
	if len(ops) != 1 || ops[0].Name != "slow" {
		t.Fatalf("slow-op log %+v", ops)
	}
	if len(ops[0].Attrs) != 1 || ops[0].Attrs[0].Key != "stage" {
		t.Fatalf("slow-op attrs %+v", ops[0].Attrs)
	}
	if tr.slow.Load() != 1 {
		t.Fatalf("slow counter %d", tr.slow.Load())
	}
}

func TestForcedRecording(t *testing.T) {
	force := false
	tr := New(Options{SampleRate: 1 << 60, SlowThreshold: -1, Force: func() bool { return force }})
	s := tr.StartRoot("calm")
	s.End()
	if len(tr.Spans()) != 0 {
		t.Fatal("unsampled span recorded without force")
	}
	force = true
	s = tr.StartRoot("alerting")
	s.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Sampled {
		t.Fatalf("forced span missing or marked sampled: %+v", spans)
	}
	if tr.forced.Load() != 1 {
		t.Fatalf("forced counter %d", tr.forced.Load())
	}

	// Force turning on mid-span still records at End.
	force = false
	s = tr.StartRoot("late")
	force = true
	s.End()
	if len(tr.Spans()) != 2 {
		t.Fatal("force-at-end span not recorded")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Options{SampleRate: 1, SlowThreshold: -1})
	s := tr.StartRoot("op")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestNilSpanAndTracerSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("x")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	s.SetAttr("k", "v")
	s.End()
	if s.Sampled() || s.Context().Valid() {
		t.Fatal("nil span claims identity")
	}
	c := tr.StartChild(Context{}, "y")
	c.End()
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{SampleRate: 1, Capacity: 8, SlowThreshold: -1})
	for i := 0; i < 20; i++ {
		tr.StartRoot("op").End()
	}
	if got := len(tr.Spans()); got != 8 {
		t.Fatalf("ring holds %d, want 8", got)
	}
	if tr.Evicted() != 12 {
		t.Fatalf("evicted %d, want 12", tr.Evicted())
	}
	if tr.Recorded() != 20 {
		t.Fatalf("recorded %d, want 20", tr.Recorded())
	}
}

func TestConcurrentEndsRace(t *testing.T) {
	tr := New(Options{SampleRate: 2, Capacity: 64, SlowThreshold: -1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				root := tr.StartRoot("root")
				child := tr.StartChild(root.Context(), "child")
				child.SetAttr("i", "x")
				child.End()
				root.End()
				if i%7 == 0 {
					tr.Spans()
				}
			}
		}()
	}
	wg.Wait()
	if tr.Started() != 8000 {
		t.Fatalf("started %d", tr.Started())
	}
	for _, s := range tr.Spans() {
		if s.TraceID == "" || s.SpanID == "" {
			t.Fatalf("torn record %+v", s)
		}
	}
}

func TestWriteJSONLAndServeHTTP(t *testing.T) {
	tr := New(Options{SampleRate: 1, SlowThreshold: 5 * time.Millisecond})
	start := time.Now()
	a := tr.StartRootAt("alpha", start)
	aCtx := a.Context()
	b := tr.StartChildAt(aCtx, "alpha.child", start)
	b.EndAt(start.Add(time.Millisecond))
	a.EndAt(start.Add(10 * time.Millisecond))
	c := tr.StartRootAt("beta", start.Add(time.Millisecond))
	c.EndAt(start.Add(2 * time.Millisecond))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("JSONL lines %d, want 3", lines)
	}

	get := func(url string) []Record {
		rec := httptest.NewRecorder()
		tr.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s -> %d: %s", url, rec.Code, rec.Body.String())
		}
		var out []Record
		for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
			if line == "" {
				continue
			}
			var r Record
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatalf("bad line %q: %v", line, err)
			}
			out = append(out, r)
		}
		return out
	}

	if got := get("/spans"); len(got) != 3 {
		t.Fatalf("unfiltered %d, want 3", len(got))
	}
	byTrace := get("/spans?trace=" + aCtx.Trace.String())
	if len(byTrace) != 2 {
		t.Fatalf("trace filter %d, want 2", len(byTrace))
	}
	if got := get("/spans?slow=1"); len(got) != 1 || got[0].Name != "alpha" {
		t.Fatalf("slow filter %+v", got)
	}
	if got := get("/spans?name=alpha"); len(got) != 2 {
		t.Fatalf("name filter %d, want 2", len(got))
	}
	if got := get("/spans?limit=1"); len(got) != 1 {
		t.Fatalf("limit %d, want 1", len(got))
	}
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/spans?limit=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad limit -> %d, want 400", rec.Code)
	}
}

func TestRegisterMetrics(t *testing.T) {
	tr := New(Options{SampleRate: 2, SlowThreshold: -1})
	reg := obs.NewRegistry()
	tr.Register(reg)
	tr.StartRoot("a").End()
	tr.StartRoot("b").End()
	want := map[string]float64{
		"rap_span_started_total":  2,
		"rap_span_recorded_total": 1,
		"rap_span_sample_rate":    2,
	}
	for _, fam := range reg.Snapshot() {
		if v, ok := want[fam.Name]; ok {
			if len(fam.Series) != 1 || fam.Series[0].Value != v {
				t.Fatalf("%s = %+v, want %v", fam.Name, fam.Series, v)
			}
			delete(want, fam.Name)
		}
	}
	if len(want) != 0 {
		t.Fatalf("metrics missing from snapshot: %v", want)
	}
}
