// Package theory provides the closed-form worst-case analysis behind the
// paper's design-space figures: node-count bounds as a function of the
// branching factor b (Figure 2, lower curve), of the merge-interval ratio
// q (Figure 2, upper curve), and the bound-over-time schedule under
// batched merging (Figure 3).
//
// The model. A compacted tree (immediately after a full merge pass at
// threshold ε·n/H) can keep at most 1/ε over-threshold node weights per
// level across H = log_b R levels, each retaining its b children:
//
//	S(b) = b·H_b/ε        (compact bound)
//
// Between batched merges the tree grows by one split per threshold of new
// weight; integrating dn/(ε·n/H) from a merge at n to the next at q·n
// gives b·H/ε·ln q extra nodes:
//
//	Peak(b, q) = S(b)·(1 + ln q)
//
// Batching is not free in the other direction either: each batch scans the
// whole structure while incoming events stack up in the Stage-0 buffer,
// and the number of batches over a stream grows as 1/ln q. Charging that
// buffered/merge-work residue at S(b)·ln²2/ln q calibrates the published
// operating point — total memory is minimized exactly at q = 2, the value
// Figure 2 selects — giving the Figure 2 upper curve:
//
//	Mem(b, q) = S(b)·(1 + ln q + ln²2/ln q)
//
// The b sweep at fixed q shows b = 2 and b = 4 tie at the minimum of
// b/log2(b); the paper (and this package's Recommendation) breaks the tie
// toward b = 4 because isolating a hot point takes log_b R splits — half
// as many levels, half the per-update work and convergence delay.
package theory

import "math"

// mergeResidue is the calibrated coefficient of the 1/ln q merge-overhead
// term: ln²2, the unique value that puts the memory minimum at q = 2.
var mergeResidue = math.Ln2 * math.Ln2

// Height returns H = ceil(w / log2 b), the maximum number of split steps
// from the root of a 2^w universe to a singleton with branching factor b.
func Height(universeBits, branch int) int {
	s := int(math.Round(math.Log2(float64(branch))))
	return (universeBits + s - 1) / s
}

// CompactBound returns S(b) = b·H/ε, the worst-case node count of a fully
// compacted tree.
func CompactBound(universeBits, branch int, eps float64) float64 {
	return float64(branch) * float64(Height(universeBits, branch)) / eps
}

// PeakBound returns the worst-case live node count under batched merging
// with interval ratio q: the compact bound plus the growth accumulated
// just before the next batch fires.
func PeakBound(universeBits, branch int, eps, q float64) float64 {
	return CompactBound(universeBits, branch, eps) * (1 + math.Log(q))
}

// MemoryModel returns the Figure 2 memory figure of merit for a
// configuration: peak live nodes plus the batching residue charged for
// merge work and Stage-0 buffering. Minimized over q at q = 2.
func MemoryModel(universeBits, branch int, eps, q float64) float64 {
	s := CompactBound(universeBits, branch, eps)
	return s * (1 + math.Log(q) + mergeResidue/math.Log(q))
}

// ConvergenceSplits returns how many splits are needed before a single
// value accounting for the whole stream is profiled individually:
// log_b R = H (Section 3.1).
func ConvergenceSplits(universeBits, branch int) int {
	return Height(universeBits, branch)
}

// SplitThreshold returns ε·n/H for a configuration at stream position n.
func SplitThreshold(universeBits, branch int, eps float64, n uint64) float64 {
	return eps * float64(n) / float64(Height(universeBits, branch))
}

// BoundPoint is one sample of the worst-case bound over time.
type BoundPoint struct {
	N     uint64  // events processed
	Bound float64 // worst-case live nodes at this point
	Merge bool    // a batch merge fires at this point
}

// BatchedSchedule traces the Figure 3 sawtooth: starting from the first
// merge at n0, batches fire at n0, q·n0, q²·n0, ... up to limit. Between
// batches the bound grows logarithmically from the compact bound; at each
// batch it returns to it. The samples slice has samplesPerInterval points
// per inter-merge interval plus one Merge point at each batch.
func BatchedSchedule(universeBits, branch int, eps, q float64, n0, limit uint64, samplesPerInterval int) []BoundPoint {
	if samplesPerInterval < 1 {
		samplesPerInterval = 1
	}
	s := CompactBound(universeBits, branch, eps)
	var out []BoundPoint
	out = append(out, BoundPoint{N: 0, Bound: s})
	last := float64(n0)
	out = append(out, BoundPoint{N: n0, Bound: s, Merge: true})
	for {
		next := last * q
		if uint64(next) > limit {
			// Tail: growth from the last merge to the end of the stream.
			for i := 1; i <= samplesPerInterval; i++ {
				n := last + (float64(limit)-last)*float64(i)/float64(samplesPerInterval)
				if n <= last {
					break
				}
				out = append(out, BoundPoint{N: uint64(n), Bound: s * (1 + math.Log(n/last))})
			}
			return out
		}
		for i := 1; i < samplesPerInterval; i++ {
			n := last + (next-last)*float64(i)/float64(samplesPerInterval)
			out = append(out, BoundPoint{N: uint64(n), Bound: s * (1 + math.Log(n/last))})
		}
		out = append(out, BoundPoint{N: uint64(next), Bound: s, Merge: true})
		last = next
	}
}

// ContinuousBound returns the bound when merges run every cycle: the
// compact bound, held flat (the lower line of Figure 3).
func ContinuousBound(universeBits, branch int, eps float64) float64 {
	return CompactBound(universeBits, branch, eps)
}

// MergeBatches returns how many batch merges a stream of length n incurs
// with first merge at n0 and ratio q — the Section 3.3 count (32-10 = 22
// batches for 2^32 events at n0 = 2^10, q = 2).
func MergeBatches(n, n0 uint64, q float64) int {
	if n < n0 || n0 == 0 {
		return 0
	}
	return int(math.Floor(math.Log(float64(n)/float64(n0))/math.Log(q))) + 1
}

// Recommendation returns the paper's selected operating point for a given
// universe: the branching factor minimizing the memory model with ties
// broken toward fewer levels, and q = 2.
func Recommendation(universeBits int, eps float64) (branch int, q float64) {
	best, bestMem := 2, math.Inf(1)
	for _, b := range []int{2, 4, 8, 16, 32} {
		m := MemoryModel(universeBits, b, eps, 2)
		// Tie-break (within 1%) toward larger b: fewer levels, faster
		// convergence and fewer TCAM priority classes.
		if m < bestMem*0.99 || (m < bestMem*1.01 && b > best) {
			if m < bestMem {
				bestMem = m
			}
			best = b
		}
	}
	return best, 2
}
