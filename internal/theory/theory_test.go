package theory

import (
	"math"
	"testing"
)

func TestHeight(t *testing.T) {
	cases := []struct {
		w, b, want int
	}{
		{64, 2, 64}, {64, 4, 32}, {64, 8, 22}, {64, 16, 16}, {32, 4, 16},
	}
	for _, tc := range cases {
		if got := Height(tc.w, tc.b); got != tc.want {
			t.Errorf("Height(%d,%d) = %d, want %d", tc.w, tc.b, got, tc.want)
		}
	}
}

func TestCompactBound(t *testing.T) {
	// b=4, w=64, eps=1%: 4*32/0.01 = 12800.
	if got := CompactBound(64, 4, 0.01); math.Abs(got-12800) > 1e-9 {
		t.Fatalf("CompactBound = %v, want 12800", got)
	}
	// Tighter epsilon means more nodes.
	if CompactBound(64, 4, 0.001) <= CompactBound(64, 4, 0.01) {
		t.Fatal("bound not monotone in 1/eps")
	}
}

func TestFig2BranchCurveShape(t *testing.T) {
	// The b sweep at q=2 must have its minimum at b in {2,4} and rise for
	// larger b — the Figure 2 lower-curve shape that motivates b=4.
	mem := func(b int) float64 { return MemoryModel(64, b, 0.01, 2) }
	m2, m4, m8, m16 := mem(2), mem(4), mem(8), mem(16)
	if math.Abs(m2-m4)/m4 > 0.35 {
		// H uses a ceiling so b=8 and uneven widths wiggle; b=2 and b=4
		// should be exactly equal for w=64.
		t.Fatalf("b=2 (%.0f) and b=4 (%.0f) should be near-tied", m2, m4)
	}
	if !(m4 <= m8 && m8 <= m16) {
		t.Fatalf("memory not increasing past b=4: %v %v %v", m4, m8, m16)
	}
}

func TestFig2MergeRatioMinimumAtTwo(t *testing.T) {
	// The q sweep must be minimized at q=2 (Figure 2 upper curve).
	best, bestQ := math.Inf(1), 0.0
	for q := 1.1; q <= 8.0; q += 0.1 {
		if m := MemoryModel(64, 4, 0.01, q); m < best {
			best, bestQ = m, q
		}
	}
	if math.Abs(bestQ-2.0) > 0.11 {
		t.Fatalf("memory model minimized at q=%.2f, want 2.0", bestQ)
	}
}

func TestPeakBound(t *testing.T) {
	s := CompactBound(64, 4, 0.01)
	if got := PeakBound(64, 4, 0.01, 1); math.Abs(got-s) > 1e-9 {
		t.Fatalf("PeakBound(q=1) = %v, want compact %v", got, s)
	}
	if got := PeakBound(64, 4, 0.01, math.E); math.Abs(got-2*s) > 1e-9 {
		t.Fatalf("PeakBound(q=e) = %v, want 2x compact", got)
	}
}

func TestConvergenceSplits(t *testing.T) {
	if got := ConvergenceSplits(64, 4); got != 32 {
		t.Fatalf("ConvergenceSplits = %d, want 32", got)
	}
	// Fewer levels with larger b: the tie-break rationale for b=4 over 2.
	if ConvergenceSplits(64, 4) >= ConvergenceSplits(64, 2) {
		t.Fatal("larger branch should converge in fewer splits")
	}
}

func TestSplitThreshold(t *testing.T) {
	// eps=1%, n=3200, H=32: threshold = 1.
	if got := SplitThreshold(64, 4, 0.01, 3200); math.Abs(got-1) > 1e-9 {
		t.Fatalf("SplitThreshold = %v, want 1", got)
	}
}

func TestBatchedScheduleShape(t *testing.T) {
	pts := BatchedSchedule(64, 4, 0.01, 2, 1<<10, 1<<20, 8)
	if len(pts) < 20 {
		t.Fatalf("schedule too sparse: %d points", len(pts))
	}
	s := CompactBound(64, 4, 0.01)
	merges := 0
	for i, p := range pts {
		if p.Bound < s-1e-9 {
			t.Fatalf("bound %v below compact %v at point %d", p.Bound, s, i)
		}
		if p.Merge {
			merges++
			if math.Abs(p.Bound-s) > 1e-9 {
				t.Fatalf("bound at merge point %d is %v, want compact %v", i, p.Bound, s)
			}
		}
		if i > 0 && p.N < pts[i-1].N {
			t.Fatalf("schedule not monotone in N at %d", i)
		}
	}
	// 2^10 .. 2^20 with q=2: 11 merge points (including the first).
	if merges != 11 {
		t.Fatalf("schedule fired %d merges, want 11", merges)
	}
	// Growth between merges stays below peak bound.
	peak := PeakBound(64, 4, 0.01, 2)
	for _, p := range pts {
		if p.Bound > peak+1e-9 {
			t.Fatalf("bound %v exceeds peak %v", p.Bound, peak)
		}
	}
}

func TestBatchedScheduleDefaultSamples(t *testing.T) {
	pts := BatchedSchedule(64, 4, 0.01, 2, 1024, 4096, 0)
	if len(pts) == 0 {
		t.Fatal("empty schedule")
	}
}

func TestContinuousBoundFlat(t *testing.T) {
	if ContinuousBound(64, 4, 0.01) != CompactBound(64, 4, 0.01) {
		t.Fatal("continuous bound must equal the compact bound")
	}
}

func TestMergeBatches(t *testing.T) {
	// The Section 3.3 counts: 2^32 events, first merge at 2^10, q=2 ->
	// 22 doublings after the first batch, 23 batches total; the paper
	// quotes the 22 inter-batch doublings. 2^64 -> 54.
	if got := MergeBatches(1<<32, 1<<10, 2); got != 23 {
		t.Fatalf("MergeBatches(2^32) = %d, want 23 (22 doublings + first)", got)
	}
	if got := MergeBatches(1<<62, 1<<10, 2) + 2; got != 55 {
		t.Fatalf("MergeBatches(2^64)+2 = %d, want 55 (54 doublings + first)", got)
	}
	if MergeBatches(100, 1024, 2) != 0 {
		t.Fatal("stream shorter than first merge must have 0 batches")
	}
	if MergeBatches(100, 0, 2) != 0 {
		t.Fatal("n0=0 must be 0 batches")
	}
}

func TestRecommendation(t *testing.T) {
	b, q := Recommendation(64, 0.01)
	if b != 4 || q != 2 {
		t.Fatalf("Recommendation = b=%d q=%v, want b=4 q=2 (the paper's choice)", b, q)
	}
}
