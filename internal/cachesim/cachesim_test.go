package cachesim

import "testing"

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{SizeBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2}, // 3 sets
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted %+v", cfg)
		}
	}
	if _, err := New(DL1Config()); err != nil {
		t.Fatalf("DL1 config rejected: %v", err)
	}
	if _, err := New(DL2Config()); err != nil {
		t.Fatalf("DL2 config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestHitMissBasics(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}) // 8 sets
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
	acc, miss, ratio := c.Stats()
	if acc != 4 || miss != 2 || ratio != 0.5 {
		t.Fatalf("stats = %d/%d/%v", acc, miss, ratio)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways, 64B lines: lines A, B, C conflict.
	c := MustNew(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	a, b, cc := uint64(0), uint64(64), uint64(128)
	c.Access(a)  // miss, fill
	c.Access(b)  // miss, fill
	c.Access(a)  // hit, refresh A
	c.Access(cc) // miss, evicts LRU = B
	if !c.Access(a) {
		t.Fatal("A evicted, want B (LRU) evicted")
	}
	if c.Access(b) {
		t.Fatal("B survived, want B evicted")
	}
}

func TestSequentialScanMissesPerLine(t *testing.T) {
	// A scan larger than the cache must miss exactly once per line.
	c := MustNew(Config{SizeBytes: 4096, LineBytes: 64, Ways: 2})
	for addr := uint64(0); addr < 64*1024; addr += 8 {
		c.Access(addr)
	}
	acc, miss, _ := c.Stats()
	if acc != 8192 {
		t.Fatalf("accesses = %d", acc)
	}
	if want := uint64(64 * 1024 / 64); miss != want {
		t.Fatalf("scan misses = %d, want %d (one per line)", miss, want)
	}
}

func TestSmallWorkingSetAllHits(t *testing.T) {
	c := MustNew(DL1Config())
	for pass := 0; pass < 10; pass++ {
		for addr := uint64(0); addr < 8<<10; addr += 64 {
			c.Access(addr)
		}
	}
	_, miss, _ := c.Stats()
	if want := uint64(8 << 10 / 64); miss != want {
		t.Fatalf("misses = %d, want %d compulsory only", miss, want)
	}
}

func TestHierarchy(t *testing.T) {
	h := NewHierarchy()
	l1, l2 := h.Access(0)
	if !l1 || !l2 {
		t.Fatal("cold access must miss both levels")
	}
	l1, l2 = h.Access(0)
	if l1 || l2 {
		t.Fatal("warm access must hit L1")
	}
	// L2 hit after L1 eviction: thrash L1's set with conflicting lines
	// that share an L1 set but spread across L2 sets.
	h2 := NewHierarchy()
	l1Sets := uint64(32 << 10 / (64 * 2)) // 256 sets
	stride := l1Sets * 64                 // same L1 set each time
	h2.Access(0)
	for i := uint64(1); i <= 4; i++ {
		h2.Access(i * stride)
	}
	l1, l2 = h2.Access(0)
	if !l1 {
		t.Fatal("address should have been evicted from L1")
	}
	if l2 {
		t.Fatal("address should still hit in the larger L2")
	}
	// L2 misses must be a subset of L1 misses.
	_, m1, _ := h2.L1.Stats()
	_, m2, _ := h2.L2.Stats()
	if m2 > m1 {
		t.Fatalf("L2 misses %d exceed L1 misses %d", m2, m1)
	}
}
