// Package cachesim implements the set-associative data caches used to
// derive the paper's cache-miss value profiles (Figure 9): the load
// stream's addresses are played through a two-level hierarchy and the
// load values are split into the all-loads, DL1-miss, and DL2-miss
// subsequences.
package cachesim

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size
	Ways      int // associativity
}

// DL1Config is the paper-era first-level data cache: 32 KB, 2-way, 64 B
// lines.
func DL1Config() Config { return Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 2} }

// DL2Config is the unified second level: 512 KB, 8-way, 64 B lines.
func DL2Config() Config { return Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8} }

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]way
	setShift int
	setMask  uint64
	clock    uint64

	accesses uint64
	misses   uint64
}

type way struct {
	tag   uint64
	valid bool
	used  uint64
}

// New builds a cache. Sizes must be powers of two with at least one set.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || bits.OnesCount(uint(cfg.LineBytes)) != 1 {
		return nil, fmt.Errorf("cachesim: line size %d must be a power of two", cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: ways %d must be positive", cfg.Ways)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		return nil, fmt.Errorf("cachesim: size %d not divisible into %d-way sets of %d-byte lines",
			cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if bits.OnesCount(uint(numSets)) != 1 {
		return nil, fmt.Errorf("cachesim: set count %d must be a power of two", numSets)
	}
	sets := make([][]way, numSets)
	backing := make([]way, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: bits.TrailingZeros(uint(cfg.LineBytes)),
		setMask:  uint64(numSets - 1),
	}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks up addr, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.accesses++
	line := addr >> c.setShift
	set := c.sets[line&c.setMask]
	tag := line >> bits.TrailingZeros(uint(len(c.sets)))

	victim := 0
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.used = c.clock
			return true
		}
		if !set[victim].valid {
			continue // keep first invalid way as victim
		}
		if !w.valid || w.used < set[victim].used {
			victim = i
		}
	}
	c.misses++
	set[victim] = way{tag: tag, valid: true, used: c.clock}
	return false
}

// Stats returns accesses, misses, and the miss ratio so far.
func (c *Cache) Stats() (accesses, misses uint64, ratio float64) {
	accesses, misses = c.accesses, c.misses
	if accesses > 0 {
		ratio = float64(misses) / float64(accesses)
	}
	return
}

// Hierarchy is a two-level data-cache stack.
type Hierarchy struct {
	L1, L2 *Cache
}

// NewHierarchy builds the paper's DL1+DL2 stack.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{L1: MustNew(DL1Config()), L2: MustNew(DL2Config())}
}

// Access plays addr through the hierarchy: L2 is only consulted on an L1
// miss. Returns which levels missed.
func (h *Hierarchy) Access(addr uint64) (l1Miss, l2Miss bool) {
	if h.L1.Access(addr) {
		return false, false
	}
	return true, !h.L2.Access(addr)
}
