package baseline

import (
	"testing"
	"testing/quick"

	"rap/internal/stats"
)

func TestFixedGridBasics(t *testing.T) {
	g := NewFixedGrid(16, 4) // 16 cells of width 4096
	g.Add(0)
	g.Add(4095)
	g.Add(4096)
	g.AddN(0xFFFF, 2)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Cells() != 16 || g.MemoryBytes() != 128 {
		t.Fatalf("cells=%d mem=%d", g.Cells(), g.MemoryBytes())
	}
	if got := g.Estimate(0, 4095); got != 2 {
		t.Fatalf("cell 0 estimate = %d, want 2", got)
	}
	if got := g.Estimate(0, 0xFFFF); got != 5 {
		t.Fatalf("full estimate = %d, want 5", got)
	}
	// Partial cells contribute nothing (lower bound).
	if got := g.Estimate(1, 4094); got != 0 {
		t.Fatalf("partial cell estimate = %d, want 0", got)
	}
	if got := g.Estimate(10, 5); got != 0 {
		t.Fatalf("inverted estimate = %d", got)
	}
}

func TestFixedGridMasksUniverse(t *testing.T) {
	g := NewFixedGrid(8, 2)
	g.Add(0x1FF) // masked to 0xFF -> last cell
	if got := g.Estimate(0xC0, 0xFF); got != 1 {
		t.Fatalf("masked point estimate = %d", got)
	}
}

func TestFixedGridHotCells(t *testing.T) {
	g := NewFixedGrid(8, 2) // 4 cells of width 64
	for i := 0; i < 90; i++ {
		g.Add(10)
	}
	for i := 0; i < 10; i++ {
		g.Add(200)
	}
	hot := g.HotCells(0.5)
	if len(hot) != 1 || hot[0].Lo != 0 || hot[0].Hi != 63 || hot[0].Count != 90 {
		t.Fatalf("HotCells = %+v", hot)
	}
}

func TestFixedGridPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"universe 0":    func() { NewFixedGrid(0, 0) },
		"grid negative": func() { NewFixedGrid(16, -1) },
		"grid too big":  func() { NewFixedGrid(16, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestPropFixedGridLowerBound(t *testing.T) {
	f := func(points []uint16, a, b uint16) bool {
		g := NewFixedGrid(16, 6)
		var truth uint64
		if a > b {
			a, b = b, a
		}
		for _, p := range points {
			g.Add(uint64(p))
			if p >= a && p <= b {
				truth++
			}
		}
		return g.Estimate(uint64(a), uint64(b)) <= truth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(10)
	for i := 0; i < 1000; i++ {
		s.Add(42)
	}
	if s.N() != 1000 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Estimate(42, 42); got != 1000 {
		t.Fatalf("sampled estimate = %d, want 1000 exactly on a constant stream", got)
	}
	if s.TableSize() != 1 {
		t.Fatalf("table size = %d", s.TableSize())
	}
	// Sampling can miss rare values entirely — the failure mode RAP's
	// merge-not-sample design avoids.
	s2 := NewSampler(100)
	for i := 0; i < 99; i++ {
		s2.Add(7)
	}
	if got := s2.Estimate(7, 7); got != 0 {
		t.Fatalf("expected rare value to be missed, estimate = %d", got)
	}
}

func TestSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sampler k=0 accepted")
		}
	}()
	NewSampler(0)
}

func TestSpaceSavingExactWhenSmall(t *testing.T) {
	ss := NewSpaceSaving(10)
	for i := 0; i < 30; i++ {
		ss.Add(uint64(i % 3))
	}
	es := ss.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d", len(es))
	}
	for _, e := range es {
		if e.Count != 10 || e.Err != 0 {
			t.Fatalf("entry %+v, want exact count 10", e)
		}
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	// Count overestimates truth by at most Err, and any value with true
	// count > n/m is guaranteed monitored.
	rng := stats.NewSplitMix64(77)
	z := stats.NewZipf(rng, 1000, 1.3)
	truth := map[uint64]uint64{}
	ss := NewSpaceSaving(50)
	n := 100_000
	for i := 0; i < n; i++ {
		v := uint64(z.Rank())
		truth[v]++
		ss.Add(v)
	}
	if ss.N() != uint64(n) {
		t.Fatalf("N = %d", ss.N())
	}
	monitored := map[uint64]bool{}
	for _, e := range ss.Entries() {
		monitored[e.Value] = true
		if e.Count < truth[e.Value] {
			t.Fatalf("space-saving count %d below truth %d for %d", e.Count, truth[e.Value], e.Value)
		}
		if e.Count-e.Err > truth[e.Value] {
			t.Fatalf("count-err %d exceeds truth %d for %d", e.Count-e.Err, truth[e.Value], e.Value)
		}
	}
	guarantee := uint64(n) / 50
	for v, c := range truth {
		if c > guarantee && !monitored[v] {
			t.Fatalf("value %d with count %d > n/m=%d not monitored", v, c, guarantee)
		}
	}
}

func TestSpaceSavingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpaceSaving m=0 accepted")
		}
	}()
	NewSpaceSaving(0)
}

func TestGridBitsForBudget(t *testing.T) {
	cases := []struct {
		budget, universe, want int
	}{
		{8 * 1024, 64, 10}, // 1024 cells
		{8 * 1024, 8, 8},   // clamped to universe
		{7, 64, 0},         // under one cell
		{16, 64, 1},
	}
	for _, tc := range cases {
		if got := GridBitsForBudget(tc.budget, tc.universe); got != tc.want {
			t.Errorf("GridBitsForBudget(%d,%d) = %d, want %d", tc.budget, tc.universe, got, tc.want)
		}
	}
}
