// Package baseline implements the flat-counter profilers RAP is an
// alternative to, for equal-memory accuracy comparisons:
//
//   - FixedGrid: "the next logical step might be to have one count the
//     top half ... divide the code into N ranges for N counters"
//     (Section 2) — equal-width range counters with no adaptation;
//   - Sampler: 1-in-k sampling into an exact table, the standard
//     software-profiling cost reduction (Arnold-Ryder style);
//   - SpaceSaving: the Metwally et al. heavy-hitter counter that state of
//     the art "flat storage of the profile" schemes reduce to — precise
//     on hot points but unable to report ranges.
package baseline

import (
	"math/bits"
	"sort"
)

// FixedGrid counts events in 2^gridBits equal-width ranges over a
// 2^universeBits universe.
type FixedGrid struct {
	universeBits int
	gridBits     int
	counts       []uint64
	n            uint64
}

// NewFixedGrid builds a grid of 2^gridBits cells over [0, 2^universeBits).
// gridBits must be in [0, universeBits] and small enough to allocate.
func NewFixedGrid(universeBits, gridBits int) *FixedGrid {
	if universeBits < 1 || universeBits > 64 {
		panic("baseline: bad universeBits")
	}
	if gridBits < 0 || gridBits > universeBits || gridBits > 30 {
		panic("baseline: bad gridBits")
	}
	return &FixedGrid{
		universeBits: universeBits,
		gridBits:     gridBits,
		counts:       make([]uint64, 1<<gridBits),
	}
}

// Add records one occurrence of p.
func (g *FixedGrid) Add(p uint64) { g.AddN(p, 1) }

// AddN records weight occurrences of p.
func (g *FixedGrid) AddN(p uint64, weight uint64) {
	if g.universeBits < 64 {
		p &= (1 << g.universeBits) - 1
	}
	g.counts[p>>(g.universeBits-g.gridBits)] += weight
	g.n += weight
}

// N returns the total weight recorded.
func (g *FixedGrid) N() uint64 { return g.n }

// Cells returns the number of counters.
func (g *FixedGrid) Cells() int { return len(g.counts) }

// MemoryBytes charges 8 bytes per counter (no range bounds needed: the
// grid is implicit).
func (g *FixedGrid) MemoryBytes() int { return 8 * len(g.counts) }

// Estimate returns a lower bound on the events in [lo, hi]: the sum of
// cells fully contained in the query.
func (g *FixedGrid) Estimate(lo, hi uint64) uint64 {
	if lo > hi {
		return 0
	}
	shift := g.universeBits - g.gridBits
	cellW := uint64(1) << shift
	first := lo >> shift
	if lo&(cellW-1) != 0 {
		first++ // partially covered leading cell
	}
	last := hi >> shift
	if hi&(cellW-1) != cellW-1 {
		if last == 0 {
			return 0
		}
		last--
	}
	var s uint64
	for c := first; c <= last && c < uint64(len(g.counts)); c++ {
		s += g.counts[c]
		if c == uint64(len(g.counts))-1 {
			break
		}
	}
	return s
}

// HotCells returns the cells with at least theta·n weight, as (lo, hi,
// count) ranges sorted by lo.
type HotCell struct {
	Lo, Hi uint64
	Count  uint64
}

// HotCells reports the grid cells above the theta threshold.
func (g *FixedGrid) HotCells(theta float64) []HotCell {
	cut := theta * float64(g.n)
	shift := g.universeBits - g.gridBits
	var out []HotCell
	for i, c := range g.counts {
		if float64(c) >= cut && c > 0 {
			lo := uint64(i) << shift
			out = append(out, HotCell{Lo: lo, Hi: lo + (1<<shift - 1), Count: c})
		}
	}
	return out
}

// Sampler profiles a 1-in-k sample of the stream exactly and scales
// estimates back up. Unlike RAP it can miss mass entirely and its
// estimates are not one-sided.
type Sampler struct {
	k      uint64
	tick   uint64
	counts map[uint64]uint64
	n      uint64
}

// NewSampler samples every k-th event (deterministic stride, the hardware
// -friendly variant). k must be >= 1.
func NewSampler(k uint64) *Sampler {
	if k == 0 {
		panic("baseline: Sampler k must be >= 1")
	}
	return &Sampler{k: k, counts: make(map[uint64]uint64)}
}

// Add records one occurrence of p, keeping it only on sample ticks.
func (s *Sampler) Add(p uint64) {
	s.n++
	s.tick++
	if s.tick == s.k {
		s.tick = 0
		s.counts[p]++
	}
}

// N returns the total stream length observed (sampled or not).
func (s *Sampler) N() uint64 { return s.n }

// Estimate returns the scaled sample count for [lo, hi].
func (s *Sampler) Estimate(lo, hi uint64) uint64 {
	var c uint64
	for v, n := range s.counts {
		if v >= lo && v <= hi {
			c += n
		}
	}
	return c * s.k
}

// TableSize returns the number of live sample entries.
func (s *Sampler) TableSize() int { return len(s.counts) }

// SpaceSaving is the Metwally-Agrawal-Abbadi top-k sketch: m counters;
// an unmonitored arrival replaces the minimum counter and inherits its
// count as overestimation error.
type SpaceSaving struct {
	m     int
	items map[uint64]*ssEntry
	n     uint64
}

type ssEntry struct {
	value uint64
	count uint64
	err   uint64
}

// NewSpaceSaving builds a sketch with m counters, m >= 1.
func NewSpaceSaving(m int) *SpaceSaving {
	if m < 1 {
		panic("baseline: SpaceSaving m must be >= 1")
	}
	return &SpaceSaving{m: m, items: make(map[uint64]*ssEntry, m)}
}

// Add records one occurrence of p.
func (ss *SpaceSaving) Add(p uint64) {
	ss.n++
	if e, ok := ss.items[p]; ok {
		e.count++
		return
	}
	if len(ss.items) < ss.m {
		ss.items[p] = &ssEntry{value: p, count: 1}
		return
	}
	// Replace the minimum counter.
	var min *ssEntry
	for _, e := range ss.items {
		if min == nil || e.count < min.count {
			min = e
		}
	}
	delete(ss.items, min.value)
	ss.items[p] = &ssEntry{value: p, count: min.count + 1, err: min.count}
}

// N returns the stream length observed.
func (ss *SpaceSaving) N() uint64 { return ss.n }

// Entry is a reported counter: Count overestimates the truth by at most
// Err.
type Entry struct {
	Value uint64
	Count uint64
	Err   uint64
}

// Entries returns the monitored counters sorted by descending count.
func (ss *SpaceSaving) Entries() []Entry {
	out := make([]Entry, 0, len(ss.items))
	for _, e := range ss.items {
		out = append(out, Entry{e.value, e.count, e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// MemoryBytes charges 24 bytes per counter (value, count, error).
func (ss *SpaceSaving) MemoryBytes() int { return 24 * ss.m }

// GridBitsForBudget returns the largest grid resolution whose counter
// array fits in the given byte budget at 8 bytes per cell — the
// equal-memory configuration used in the RAP-vs-grid comparison.
func GridBitsForBudget(budgetBytes int, universeBits int) int {
	cells := budgetBytes / 8
	if cells < 1 {
		return 0
	}
	b := bits.Len(uint(cells)) - 1
	if b > universeBits {
		b = universeBits
	}
	return b
}
