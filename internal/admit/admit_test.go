package admit

import (
	"encoding/json"
	"testing"

	"rap/internal/core"
	"rap/internal/obs"
	"rap/internal/trace"
	"rap/internal/workload"
)

// carrier returns the benign gzip load-value stream used as the warm
// traffic in mixed tests.
func carrier(t *testing.T) trace.Source {
	t.Helper()
	b, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return b.Values(1, 0)
}

// gatedTree builds a default-config tree with a single admission gate
// from fe installed.
func gatedTree(t *testing.T, fe *Frontend) *core.Tree {
	t.Helper()
	cfg := core.DefaultConfig()
	tr := core.MustNew(cfg)
	gates := fe.Gates(cfg.UniverseBits, 1)
	if gates == nil {
		t.Fatal("Gates returned nil on first mint")
	}
	tr.SetAdmitter(gates[0])
	return tr
}

// fastOpts makes the watchdog react within small test streams.
func fastOpts() Options {
	return Options{
		EvalEvery:     1024,
		WindowOffered: 2048,
		StartupGraceN: 8192,
		ColdGraceN:    2048,
		Seed:          42,
	}
}

func TestFloodEscalatesToSiege(t *testing.T) {
	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	src := workload.Flood(7)
	for i := 0; i < 200_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	st := fe.Stats()
	if st.LevelMax != Siege {
		t.Fatalf("level max = %v after a pure key flood, want siege (stats %+v)", st.LevelMax, st)
	}
	if st.Level != Siege {
		t.Fatalf("level = %v while the flood is still running, want siege (de-escalated under sustained attack)", st.Level)
	}
	if st.Unadmitted == 0 {
		t.Fatal("flood refused nothing")
	}
	if tr.UnadmittedN() != st.Unadmitted {
		t.Fatalf("tree ledger %d != gate refusal counter %d", tr.UnadmittedN(), st.Unadmitted)
	}
}

func TestBenignStreamStaysNormal(t *testing.T) {
	// Default StartupGraceN here on purpose: the churn grace exists
	// precisely so benign cold-start structure formation is not judged.
	opts := fastOpts()
	opts.StartupGraceN = 0
	fe := New(opts)
	tr := gatedTree(t, fe)
	b, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	src := b.Values(1, 0)
	for i := 0; i < 500_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	st := fe.Stats()
	if st.LevelMax != Normal {
		t.Fatalf("benign gzip stream escalated to %v; admission must be invisible to the paper's workloads", st.LevelMax)
	}
	// gzip's modeled mixture carries ~13% genuinely diffuse mass (the
	// uniform tail over [2^18, 2^62]) that never warms any prefix; the
	// Normal-level toll on it is (1 - 1/BasePeriod) of that share. The
	// hot-range structure — everything the paper's figures are built
	// from — must pass untolled, so total refusal stays near the diffuse
	// share and well under it plus margin.
	if frac := float64(st.Unadmitted) / float64(st.Offered); frac > 0.15 {
		t.Fatalf("benign stream refused %.1f%% of its mass, more than its diffuse tail can explain", frac*100)
	}
}

func TestBurstEscalatesThenRecovers(t *testing.T) {
	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	b, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	src := workload.FloodBurst(7, 100_000, b.Values(1, 0))
	for i := 0; i < 600_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	st := fe.Stats()
	if st.LevelMax < Defensive {
		t.Fatalf("burst never escalated (level max %v)", st.LevelMax)
	}
	if st.Level != Normal {
		t.Fatalf("level = %v long after the burst ended, want normal (hysteresis never released)", st.Level)
	}
	if st.LevelChanges < 2 {
		t.Fatalf("level changes = %d, want at least an escalation and a recovery", st.LevelChanges)
	}
}

func TestStatsMassAccounting(t *testing.T) {
	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	src := workload.FloodMix(7, 0.5, carrier(t))
	for i := 0; i < 100_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	st := fe.Stats()
	if st.Offered != st.Admitted+st.Unadmitted {
		t.Fatalf("mass leak: offered %d != admitted %d + unadmitted %d",
			st.Offered, st.Admitted, st.Unadmitted)
	}
	if st.Admitted != tr.N() {
		t.Fatalf("gate admitted %d but tree credited %d", st.Admitted, tr.N())
	}
	if st.Unadmitted != tr.UnadmittedN() {
		t.Fatalf("gate refused %d but tree ledger holds %d", st.Unadmitted, tr.UnadmittedN())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, Level) {
		fe := New(fastOpts())
		tr := gatedTree(t, fe)
		src := workload.FloodMix(7, 0.8, carrier(t))
		for i := 0; i < 150_000; i++ {
			e, _ := src.Next()
			tr.AddN(e.Value, e.Weight)
		}
		st := fe.Stats()
		return st.Admitted, st.Unadmitted, st.Level
	}
	a1, u1, l1 := run()
	a2, u2, l2 := run()
	if a1 != a2 || u1 != u2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", a1, u1, l1, a2, u2, l2)
	}
}

func TestPeriodDoublingUnderArenaPressure(t *testing.T) {
	opts := fastOpts()
	// An arena ceiling low enough that any real tree exceeds it, so the
	// watchdog lives at Siege with the hard signal pinned.
	opts.ArenaSoftBytes = 1
	opts.ArenaHardBytes = 2
	fe := New(opts)
	tr := gatedTree(t, fe)
	src := workload.Flood(7)
	for i := 0; i < 300_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	st := fe.Stats()
	if st.Level != Siege {
		t.Fatalf("level = %v with arena pinned over the hard ceiling, want siege", st.Level)
	}
	siegeBase := fe.Options().BasePeriod << siegeShift
	if st.Period <= siegeBase {
		t.Fatalf("period = %d never doubled past the siege base %d under sustained hard pressure", st.Period, siegeBase)
	}
	if st.Period > fe.Options().MaxPeriod {
		t.Fatalf("period = %d exceeds MaxPeriod %d", st.Period, fe.Options().MaxPeriod)
	}
}

func TestGatesSingleMint(t *testing.T) {
	fe := New(Options{})
	if g := fe.Gates(64, 4); g == nil || len(g) != 4 {
		t.Fatalf("first mint: got %v", g)
	}
	if g := fe.Gates(64, 4); g != nil {
		t.Fatal("second mint must return nil: one frontend wires one engine")
	}
	if g := New(Options{}).Gates(0, 0); g != nil {
		t.Fatal("bad args must return nil")
	}
}

func TestRegisterExportsMetrics(t *testing.T) {
	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	reg := obs.NewRegistry()
	fe.Register(reg)
	src := workload.Flood(7)
	for i := 0; i < 50_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	snap := reg.Snapshot()
	want := map[string]bool{
		"rap_admit_offered_total":       false,
		"rap_admit_admitted_total":      false,
		"rap_admit_unadmitted_total":    false,
		"rap_admit_level":               false,
		"rap_admit_level_max":           false,
		"rap_admit_period":              false,
		"rap_admit_level_changes_total": false,
	}
	for _, fam := range snap {
		if _, ok := want[fam.Name]; ok {
			want[fam.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s not exported", name)
		}
	}
}

func TestTreeReplacedDoesNotWrapDeltas(t *testing.T) {
	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	src := workload.Flood(7)
	for i := 0; i < 60_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	// Simulate a snapshot restore: the gate's published tree signals drop
	// to zero while its cumulative event counters keep going.
	gate := fe.gates[0]
	gate.TreeReplaced()
	fe.Observe(core.Stats{}) // stats of a freshly restored empty tree
	for i := 0; i < 60_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	// Reaching here without a wrap-induced panic or a stuck level is the
	// assertion; sanity-check the level is still a defined value.
	if l := fe.Level(); l < Normal || l > Siege {
		t.Fatalf("level %v out of range after restore", l)
	}
}

func TestWatchdogDebugHooksObserveWindows(t *testing.T) {
	// The debug hooks are the watchdog's flight recorder; keep them honest
	// so future control-loop tuning can trust what they report.
	var windows, escalations int
	var lastTo Level
	debugWindow = func(offered, admDelta, churnDelta uint64, rate, coldFrac float64) {
		windows++
		if coldFrac < 0 || coldFrac > 1 {
			t.Errorf("window reported cold fraction %f outside [0,1]", coldFrac)
		}
	}
	debugEscalate = func(from, to Level, arena int64, rate, coldFrac float64, offered uint64) {
		escalations++
		if to <= from {
			t.Errorf("escalation hook fired for %v -> %v, want strictly upward", from, to)
		}
		lastTo = to
	}
	defer func() { debugWindow, debugEscalate = nil, nil }()

	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	src := workload.Flood(7)
	for i := 0; i < 120_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	if windows == 0 {
		t.Fatal("no windows judged in 120k events")
	}
	if escalations == 0 {
		t.Fatal("flood produced no escalation decisions")
	}
	if lastTo != fe.Stats().LevelMax {
		t.Fatalf("last escalation hook saw %v but stats report level max %v", lastTo, fe.Stats().LevelMax)
	}
}

func TestWatchdogStateCapture(t *testing.T) {
	fe := New(fastOpts())
	tr := gatedTree(t, fe)
	src := workload.Flood(11)
	for i := 0; i < 200_000; i++ {
		e, _ := src.Next()
		tr.AddN(e.Value, e.Weight)
	}
	st := fe.WatchdogState()
	if st.Level != "siege" || st.LevelMax != "siege" {
		t.Fatalf("flooded state = %+v, want siege", st)
	}
	if st.Offered == 0 || st.Unadmitted == 0 || st.Cold == 0 {
		t.Fatalf("counters empty: %+v", st)
	}
	if st.Offered != st.Admitted+st.Unadmitted {
		t.Fatalf("offered %d != admitted %d + unadmitted %d", st.Offered, st.Admitted, st.Unadmitted)
	}
	if st.Gates != 1 || st.Period == 0 || st.LevelChanges == 0 {
		t.Fatalf("control fields unset: %+v", st)
	}
	// The capture agrees with the metrics-facing Stats view.
	ms := fe.Stats()
	if st.Level != ms.Level.String() || st.Offered != ms.Offered {
		t.Fatalf("WatchdogState %+v disagrees with Stats %+v", st, ms)
	}
	// And it marshals: bundles embed it as JSON.
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
