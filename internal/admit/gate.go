package admit

import (
	"sync/atomic"

	"rap/internal/core"
	"rap/internal/stats"
)

// newGateRNG derives gate i's coin RNG from the frontend seed. Feeding
// the shard index through one splitmix64 step decorrelates the per-gate
// streams, and the derivation is deterministic so experiments reproduce.
func newGateRNG(seed, i uint64) *stats.SplitMix64 {
	return stats.NewSplitMix64(stats.NewSplitMix64(seed ^ i).Uint64())
}

// Gate is the per-shard half of the admission frontend: the object
// installed on a tree via core.Tree.SetAdmitter (or per shard via
// shard.Engine.SetShardAdmitters). All Gate methods except the atomic
// counter reads are called with the owning shard's lock held, which is
// what makes the sketch and RNG safe without their own lock.
type Gate struct {
	f            *Frontend
	universeBits int
	shift        uint // universeBits - warmBits: prefix index shift
	rng          *stats.SplitMix64

	// warm is the admission sketch: one saturating counter per b-adic
	// prefix, indexed directly by the prefix bits (no hashing — the index
	// IS the b-adic prefix, so warmth has range semantics, not item
	// semantics). Only this gate touches it, under the shard lock.
	warm []uint8

	// ticks/decayTicks/epochSeen drive the gate's periodic duties; shard
	// lock protected, never read elsewhere.
	ticks      uint64
	decayTicks uint64
	epochSeen  uint64

	// Atomics: written under the shard lock, read lock-free by the
	// controller and the metrics plane.
	offered    atomic.Uint64
	admitted   atomic.Uint64
	unadmitted atomic.Uint64
	cold       atomic.Uint64 // offered weight that missed the warm/leaf bypass
	arenaBytes atomic.Int64
	churn      atomic.Uint64 // cumulative splits+merge batches from the last Pulse
	batches    atomic.Uint64 // cumulative merge passes from the last Pulse
}

// Admit implements core.Admitter: the admission decision for one event.
func (g *Gate) Admit(p uint64, weight uint64, plen int) bool {
	g.offered.Add(weight)
	g.tick()
	idx := p >> g.shift
	w := g.warm[idx]
	// An existing exact leaf cannot gain structure from this event, and a
	// warm prefix has proven it deserves refinement: both pass, and both
	// keep the prefix warm against decay.
	if plen >= g.universeBits || w >= g.f.opts.WarmThreshold {
		if w < 255 {
			g.warm[idx] = w + 1
		}
		g.admitted.Add(weight)
		return true
	}
	// Cold point: geometric coin at the current period. A winner warms its
	// prefix one step — a genuinely hot new region wins repeatedly and
	// crosses WarmThreshold; flood prefixes, each hit rarely, never do.
	g.cold.Add(weight)
	period := g.f.period.Load()
	if period <= 1 || g.rng.Uint64()&(period-1) == 0 {
		if w < 255 {
			g.warm[idx] = w + 1
		}
		g.admitted.Add(weight)
		return true
	}
	g.unadmitted.Add(weight)
	return false
}

// tick runs the gate's periodic duties on its event clock: sketch decay,
// sketch halving when the frontend escalated (the level epoch moved), and
// triggering a watchdog evaluation. All sketch writes happen here or in
// Admit — gate-side, under the shard lock.
func (g *Gate) tick() {
	g.ticks++
	if g.ticks >= g.f.opts.EvalEvery {
		g.ticks = 0
		if ep := g.f.levelEpoch.Load(); ep != g.epochSeen {
			g.epochSeen = ep
			g.halveWarm()
		}
		g.f.tryEvaluate()
	}
	g.decayTicks++
	if g.decayTicks >= g.f.opts.DecayEvery {
		g.decayTicks = 0
		g.halveWarm()
	}
}

// halveWarm ages the sketch. Halving (not clearing) keeps genuinely hot
// prefixes warm across the boundary while flood-accumulated warmth decays
// geometrically.
func (g *Gate) halveWarm() {
	for i := range g.warm {
		g.warm[i] >>= 1
	}
}

// Pulse implements core.Admitter: the tree delivers fresh stats right
// after each split and merge batch. The gate publishes the watchdog's
// per-shard signals — arena footprint and cumulative structural churn —
// for the controller to sum. Churn counts splits plus merge PASSES, not
// folded nodes: a merge batch folds hundreds of nodes at one instant by
// design, and counting them individually would spike the rate signal on
// perfectly benign streams.
func (g *Gate) Pulse(st core.Stats) {
	g.arenaBytes.Store(int64(st.ArenaBytes))
	g.churn.Store(st.Splits + st.MergeBatches)
	g.batches.Store(st.MergeBatches)
}

// TreeReplaced implements core.Admitter: the gated tree was swapped
// (snapshot restore, shard adoption). The published signals describe a
// tree that no longer exists; zero them until the new tree pulses. The
// controller clamps its cumulative baselines, so the backward jump cannot
// wrap a delta.
func (g *Gate) TreeReplaced() {
	g.arenaBytes.Store(0)
	g.churn.Store(0)
	g.batches.Store(0)
}

// Offered, Admitted and Unadmitted are the gate's process-lifetime
// counters (they survive tree restores, unlike the tree's own ledger —
// the tree ledger is authoritative for bounds, these for operations).
func (g *Gate) Offered() uint64    { return g.offered.Load() }
func (g *Gate) Admitted() uint64   { return g.admitted.Load() }
func (g *Gate) Unadmitted() uint64 { return g.unadmitted.Load() }

var _ core.Admitter = (*Gate)(nil)
