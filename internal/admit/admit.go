// Package admit is the randomized admission frontend: the deliberate
// graceful-degradation subsystem that protects the RAP tree from
// adversarial cardinality. A flood of never-repeating keys (scrapers,
// spoofed users, randomized attack traffic) forces splits and merge churn
// for mass that never becomes hot, burning arena memory and merge CPU the
// paper's adaptive-range machinery assumes is spent on genuinely skewed
// traffic.
//
// The defense follows the Randomized Admission Policy of Ben Basat et al.
// (arXiv 1612.02962), adapted to the RAP tree's b-adic geometry: an event
// whose exact leaf already exists, or whose b-adic prefix is "warm" per a
// tiny admission sketch, passes straight through; a cold event must win a
// geometric coin flip (1-in-period) before it may create new structure.
// Losers are counted into the tree's unadmitted ledger (core.Tree
// UnadmittedN), which the tree charges to every upper bound and the online
// audit (internal/audit) folds into its certified budget — so the system
// degrades gracefully *and verifiably* under attack instead of melting.
//
// The coin period is not fixed. A watchdog over arena footprint and
// split+merge churn escalates it through explicit degradation levels —
// Normal -> Defensive -> Siege — and doubles it further under sustained
// arena pressure at Siege ("period doubling under pressure"), then
// de-escalates one level at a time with hysteresis once the signals stay
// calm. Level transitions are logged, recorded in the structural trace
// ring, and exported as rap_admit_* metrics.
//
// Concurrency contract: per-shard Gates run under their shard's lock and
// never take another lock unconditionally (the controller mutex is only
// TryLock'd from the hot path). The controller never touches a gate's
// sketch — sketch maintenance happens gate-side, keyed off a level epoch
// counter — so there is no lock-order or data-race hazard between the
// ingest path and the watchdog.
package admit

import (
	"log/slog"
	"math/bits"
	"sync"
	"sync/atomic"

	"rap/internal/core"
	"rap/internal/obs"
)

// Level is a degradation level of the admission frontend.
type Level int32

const (
	// Normal: baseline admission. Cold points face the base coin period;
	// warm traffic is untouched.
	Normal Level = iota
	// Defensive: sustained churn or arena growth detected; the coin period
	// is raised so cold points must be markedly more persistent to create
	// structure.
	Defensive
	// Siege: the tree is under structural attack (or memory ceiling
	// pressure); the coin period is raised steeply and doubles further
	// while arena pressure persists.
	Siege
)

// String names the level for logs and traces.
func (l Level) String() string {
	switch l {
	case Normal:
		return "normal"
	case Defensive:
		return "defensive"
	case Siege:
		return "siege"
	default:
		return "invalid"
	}
}

// Options parameterize a Frontend. The zero value selects all defaults.
type Options struct {
	// BasePeriod is the geometric coin period at Normal: a cold point is
	// admitted with probability 1/BasePeriod. Rounded up to a power of two.
	// Default 8.
	BasePeriod uint64
	// MaxPeriod caps period doubling under pressure at Siege. Rounded up
	// to a power of two. Default 8192.
	MaxPeriod uint64

	// WarmBits sizes the admission sketch: one saturating byte per
	// WarmBits-bit b-adic prefix of the universe (clamped to the universe
	// width). Default 14 (a 16 KiB sketch per shard).
	WarmBits int
	// WarmThreshold is the sketch count at which a prefix is considered
	// warm and its traffic bypasses the coin. Default 4.
	WarmThreshold uint8
	// DecayEvery halves the sketch every DecayEvery events seen by a gate,
	// so warmth earned long ago expires. Default 1<<20.
	DecayEvery uint64

	// EvalEvery is how many events a gate sees between watchdog
	// evaluations it triggers. Default 8192.
	EvalEvery uint64
	// WindowOffered is the decision window: the controller judges churn
	// rate over at least this much offered weight. Default 16384.
	WindowOffered uint64
	// StartupGraceN suppresses the churn signal (not the arena signal)
	// until this much weight has been offered: early-stream splitting is
	// the adaptive machinery finding the distribution, not an attack.
	// Default 1<<17.
	StartupGraceN uint64

	// ArenaSoftBytes and ArenaHardBytes are the watchdog's memory
	// thresholds over the engine's total arena footprint: soft escalates
	// to Defensive, hard to Siege. Defaults 8 MiB and 32 MiB.
	ArenaSoftBytes int64
	ArenaHardBytes int64
	// ChurnSoft and ChurnHard are the watchdog's churn thresholds in
	// split operations plus merge passes per 1000 ADMITTED weight (merge
	// passes, not folded nodes — batches fold many nodes at one instant
	// by design, which would spike a per-node signal on benign streams). Admitted, not
	// offered, keeps the signal control-invariant: refusing more cold mass
	// must not flatter the rate, or the watchdog settles into a limit
	// cycle (escalate, look calm because the denominator includes the
	// refused flood, de-escalate, flood again). Per admitted weight the
	// rate only falls when the stream itself turns benign. Defaults 25
	// and 100.
	ChurnSoft float64
	ChurnHard float64
	// DeescalateRatio scales the escalation thresholds down for the calm
	// test: to leave a level, signals must sit below ratio x the
	// thresholds that entered it. Default 0.5.
	DeescalateRatio float64
	// ColdCalmFrac is the de-escalation gate on stream composition: a
	// window only counts as calm if less than this fraction of its offered
	// weight was cold (missed the warm-prefix/leaf bypass). A persistent
	// never-repeating flood keeps the cold fraction near 1 regardless of
	// the admission period — churn and arena go quiet at Siege precisely
	// because the gate is refusing the flood, and de-escalating on those
	// signals alone just re-admits it (a limit cycle). Cold fraction is
	// the control-invariant attack signature. Benign phase shifts push it
	// up only until the new hot regions warm. Default 0.5.
	ColdCalmFrac float64
	// ColdSiegeFrac is the composition escalation threshold: a decision
	// window (past ColdGraceN) whose cold fraction is at least this goes
	// straight to Siege without waiting for churn or arena damage — a
	// stream that is mostly never-seen-before mass after the sketch has
	// had time to warm is a cardinality attack by definition. Default
	// 0.75.
	ColdSiegeFrac float64
	// ColdGraceN arms the composition signals once this much weight has
	// been offered. It is much shorter than StartupGraceN because warmth
	// is observable almost immediately — a benign stream's hot prefixes
	// collect coin wins within the first window — while benign churn
	// takes far longer to settle. Default 1<<14 (one decision window).
	ColdGraceN uint64
	// CalmStreak is how many consecutive calm decision windows are needed
	// before de-escalating one level (hysteresis). Default 3.
	CalmStreak int

	// Seed derives the per-gate coin RNG streams, so a run is
	// reproducible. Default a fixed published constant.
	Seed uint64

	// Logger, when set, receives level-transition logs.
	Logger *slog.Logger
	// Trace, when set, records level transitions with RecordAlways (they
	// must never be sampled away). See the field mapping on recordLevel.
	Trace *obs.StructuralTrace
}

func (o Options) withDefaults() Options {
	if o.BasePeriod == 0 {
		o.BasePeriod = 8
	}
	o.BasePeriod = ceilPow2(o.BasePeriod)
	if o.MaxPeriod == 0 {
		o.MaxPeriod = 8192
	}
	o.MaxPeriod = ceilPow2(o.MaxPeriod)
	if siege := o.BasePeriod << siegeShift; o.MaxPeriod < siege {
		o.MaxPeriod = siege
	}
	if o.WarmBits == 0 {
		o.WarmBits = 14
	}
	if o.WarmThreshold == 0 {
		o.WarmThreshold = 4
	}
	if o.DecayEvery == 0 {
		o.DecayEvery = 1 << 20
	}
	if o.EvalEvery == 0 {
		o.EvalEvery = 8192
	}
	if o.WindowOffered == 0 {
		o.WindowOffered = 16384
	}
	if o.StartupGraceN == 0 {
		o.StartupGraceN = 1 << 17
	}
	if o.ArenaSoftBytes == 0 {
		o.ArenaSoftBytes = 8 << 20
	}
	if o.ArenaHardBytes == 0 {
		o.ArenaHardBytes = 32 << 20
	}
	if o.ChurnSoft == 0 {
		o.ChurnSoft = 25
	}
	if o.ChurnHard == 0 {
		o.ChurnHard = 100
	}
	if o.ColdCalmFrac == 0 {
		o.ColdCalmFrac = 0.5
	}
	if o.ColdSiegeFrac == 0 {
		o.ColdSiegeFrac = 0.75
	}
	if o.ColdGraceN == 0 {
		o.ColdGraceN = 1 << 14
	}
	if o.DeescalateRatio == 0 {
		o.DeescalateRatio = 0.5
	}
	if o.CalmStreak == 0 {
		o.CalmStreak = 3
	}
	if o.Seed == 0 {
		o.Seed = 0x9e3779b97f4a7c15
	}
	return o
}

// debugEscalate, when non-nil (tests only), observes escalation decisions.
var debugEscalate func(from, to Level, arena int64, rate, coldFrac float64, offered uint64)

// debugWindow, when non-nil (tests only), observes every judged window.
var debugWindow func(offered, admDelta, churnDelta uint64, rate, coldFrac float64)

// Escalation multiplies the base period by 2^shift per level.
const (
	defensiveShift = 3 // Defensive period = BasePeriod * 8
	siegeShift     = 6 // Siege period = BasePeriod * 64 (before doubling)
)

func ceilPow2(x uint64) uint64 {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len64(x-1)
}

// Frontend is the shared controller of a set of per-shard admission
// Gates: it owns the degradation level, the current coin period, and the
// watchdog that moves between them. One Frontend wires to exactly one
// engine (one Gates call).
type Frontend struct {
	opts Options

	// level, period and levelEpoch are the control outputs the gates read
	// on their hot path; the controller is their only writer.
	level      atomic.Int32
	period     atomic.Uint64
	levelEpoch atomic.Uint64 // bumped on escalation: gates halve their sketch

	levelChanges atomic.Uint64
	levelMax     atomic.Int32

	// ctrlMu serializes watchdog evaluations. Gates only TryLock it (an
	// evaluation already in flight serves them too); Observe locks it
	// plainly, which is safe because external callers hold no shard lock.
	ctrlMu       sync.Mutex
	gates        []*Gate
	lastOffered  uint64
	lastAdmitted uint64
	lastCold     uint64
	lastChurn    uint64
	lastBatches  uint64
	// cooldown skips judgment for one window after a level transition:
	// the transition itself perturbs the signals (an escalation halves the
	// warm sketches, cratering the admitted rate), and judging that
	// transient re-escalates on self-inflicted noise.
	cooldown bool
	// churnWindows counts consecutive windows with an over-threshold
	// churn rate. Benign streams spike churn for one window around each
	// geometric merge pass (threshold-hovering nodes fold and immediately
	// re-split), so churn only escalates when sustained; arena and cold
	// fraction remain immediate.
	churnWindows int
	calmWindows  int
}

// New builds a Frontend from options. Mint its per-shard gates with Gates
// and install them on the engine; drive the watchdog's out-of-band signal
// with Observe.
func New(opts Options) *Frontend {
	f := &Frontend{opts: opts.withDefaults()}
	f.period.Store(f.opts.BasePeriod)
	return f
}

// Options returns the normalized options the frontend runs with.
func (f *Frontend) Options() Options { return f.opts }

// Level returns the current degradation level.
func (f *Frontend) Level() Level { return Level(f.level.Load()) }

// Period returns the current coin period for cold points.
func (f *Frontend) Period() uint64 { return f.period.Load() }

// periodFor is the base period of a level, before pressure doubling.
func (f *Frontend) periodFor(l Level) uint64 {
	switch l {
	case Defensive:
		return f.opts.BasePeriod << defensiveShift
	case Siege:
		return f.opts.BasePeriod << siegeShift
	default:
		return f.opts.BasePeriod
	}
}

// Gates mints n per-shard admission gates for a tree universe of
// universeBits. Each gate implements core.Admitter; install gate i on
// shard i (or the single gate on a lone tree). A Frontend wires to exactly
// one engine: a second call returns nil.
func (f *Frontend) Gates(universeBits, n int) []*Gate {
	f.ctrlMu.Lock()
	defer f.ctrlMu.Unlock()
	if f.gates != nil || n <= 0 || universeBits <= 0 || universeBits > 64 {
		return nil
	}
	warmBits := f.opts.WarmBits
	if warmBits > universeBits {
		warmBits = universeBits
	}
	gates := make([]*Gate, n)
	for i := range gates {
		gates[i] = &Gate{
			f:            f,
			universeBits: universeBits,
			shift:        uint(universeBits - warmBits),
			warm:         make([]uint8, 1<<warmBits),
			rng:          newGateRNG(f.opts.Seed, uint64(i)),
		}
	}
	f.gates = gates
	return gates
}

// Observe feeds the watchdog an engine-wide stats snapshot taken outside
// any shard lock (e.g. from a periodic ticker). It exists because the
// gate-side signal only fires while events flow: after a flood stops,
// Observe is what lets the frontend notice the calm and de-escalate, and
// its arena reading is authoritative where a gate's is a per-shard sample
// from the last structural change.
func (f *Frontend) Observe(st core.Stats) {
	f.ctrlMu.Lock()
	defer f.ctrlMu.Unlock()
	var offered, admitted, cold uint64
	for _, g := range f.gates {
		offered += g.offered.Load()
		admitted += g.admitted.Load()
		cold += g.cold.Load()
	}
	f.evaluateLocked(int64(st.ArenaBytes), st.Splits+st.MergeBatches, st.MergeBatches, offered, admitted, cold, true)
}

// tryEvaluate is the gate-side watchdog trigger: sum the per-gate signals
// and evaluate, unless another evaluation is already in flight.
func (f *Frontend) tryEvaluate() {
	if !f.ctrlMu.TryLock() {
		return
	}
	defer f.ctrlMu.Unlock()
	var offered, admitted, cold, churn, batches uint64
	var arena int64
	for _, g := range f.gates {
		offered += g.offered.Load()
		admitted += g.admitted.Load()
		cold += g.cold.Load()
		churn += g.churn.Load()
		batches += g.batches.Load()
		arena += g.arenaBytes.Load()
	}
	f.evaluateLocked(arena, churn, batches, offered, admitted, cold, false)
}

// evaluateLocked is the degradation state machine. Escalation is
// immediate and jumps straight to the level the signals demand;
// de-escalation steps one level at a time and only after CalmStreak
// consecutive windows below DeescalateRatio x the entry thresholds
// (hysteresis, so a flood that pulses cannot make the frontend thrash).
// force causes a decision even before a full offered window has
// accumulated (the Observe path, so calm is noticed on an idle stream).
func (f *Frontend) evaluateLocked(arena int64, churnTotal, batchesTotal, offeredTotal, admittedTotal, coldTotal uint64, force bool) {
	// A snapshot restore can move the engine's cumulative counters
	// backward; clamp rather than let the unsigned deltas wrap.
	if churnTotal < f.lastChurn {
		f.lastChurn = churnTotal
	}
	if offeredTotal < f.lastOffered {
		f.lastOffered = offeredTotal
	}
	if admittedTotal < f.lastAdmitted {
		f.lastAdmitted = admittedTotal
	}
	if coldTotal < f.lastCold {
		f.lastCold = coldTotal
	}
	if batchesTotal < f.lastBatches {
		f.lastBatches = batchesTotal
	}
	offDelta := offeredTotal - f.lastOffered
	if !force && offDelta < f.opts.WindowOffered {
		return
	}
	churnDelta := churnTotal - f.lastChurn
	admDelta := admittedTotal - f.lastAdmitted
	coldDelta := coldTotal - f.lastCold
	batchesDelta := batchesTotal - f.lastBatches
	f.lastOffered, f.lastChurn = offeredTotal, churnTotal
	f.lastAdmitted, f.lastCold = admittedTotal, coldTotal
	f.lastBatches = batchesTotal

	// Churn per 1000 ADMITTED weight: structure only changes on credited
	// mass, so this measures how adversarial the mass getting through
	// still is — a rate that refusing more cold points cannot flatter.
	// (admDelta == 0 implies churnDelta == 0: no credit, no splits.)
	var rate float64
	if admDelta > 0 && offeredTotal >= f.opts.StartupGraceN {
		rate = float64(churnDelta) * 1000 / float64(admDelta)
	}

	if f.cooldown {
		// First full window after a transition: refresh the baselines
		// (done above), judge nothing.
		f.cooldown = false
		return
	}

	// Cold fraction of the window's offered weight — the composition
	// signal. Armed after the short ColdGraceN, long before the churn
	// signal: benign hot prefixes warm within the first few windows, so a
	// window that is still mostly cold past that point is flood mass.
	var coldFrac float64
	if offDelta > 0 && offeredTotal >= f.opts.ColdGraceN {
		coldFrac = float64(coldDelta) / float64(offDelta)
	}

	churnTarget := Normal
	switch {
	case rate >= f.opts.ChurnHard:
		churnTarget = Siege
	case rate >= f.opts.ChurnSoft:
		churnTarget = Defensive
	}
	// A window containing a geometric merge pass is structurally noisy by
	// design: the pass folds threshold-hovering nodes that immediately
	// re-split, a transient the tree's own maintenance schedule inflicts
	// on perfectly benign streams. Such windows reset the streak; only
	// churn sustained across merge-free windows escalates.
	if batchesDelta > 0 {
		f.churnWindows = 0
	} else if churnTarget > Normal {
		f.churnWindows++
	} else {
		f.churnWindows = 0
	}
	if f.churnWindows < 3 {
		churnTarget = Normal
	}

	if debugWindow != nil {
		debugWindow(offeredTotal, admDelta, churnDelta, rate, coldFrac)
	}
	target := churnTarget
	switch {
	case arena >= f.opts.ArenaHardBytes || coldFrac >= f.opts.ColdSiegeFrac:
		target = Siege
	case arena >= f.opts.ArenaSoftBytes:
		if target < Defensive {
			target = Defensive
		}
	}

	cur := Level(f.level.Load())
	switch {
	case target > cur:
		if debugEscalate != nil {
			debugEscalate(cur, target, arena, rate, coldFrac, offeredTotal)
		}
		f.calmWindows = 0
		f.cooldown = true
		f.setLevelLocked(target, arena, rate, offeredTotal)
	case target < cur:
		ratio := f.opts.DeescalateRatio
		var calm bool
		if cur == Siege {
			calm = arena < int64(ratio*float64(f.opts.ArenaHardBytes)) && rate < ratio*f.opts.ChurnHard
		} else {
			calm = arena < int64(ratio*float64(f.opts.ArenaSoftBytes)) && rate < ratio*f.opts.ChurnSoft
		}
		// Composition gate: quiet churn at a high level means the gate is
		// working, not that the attack stopped. Only a window whose offered
		// mass is mostly warm again is evidence the stream turned benign.
		if offDelta > 0 && float64(coldDelta) >= f.opts.ColdCalmFrac*float64(offDelta) {
			calm = false
		}
		if !calm {
			f.calmWindows = 0
			return
		}
		f.calmWindows++
		if f.calmWindows >= f.opts.CalmStreak {
			f.calmWindows = 0
			f.cooldown = true
			f.setLevelLocked(cur-1, arena, rate, offeredTotal)
		}
	default:
		f.calmWindows = 0
		// Period doubling under pressure: Siege's base period is not
		// containing arena growth, so make cold admission geometrically
		// rarer still.
		if cur == Siege && arena >= f.opts.ArenaHardBytes {
			if p := f.period.Load(); p < f.opts.MaxPeriod {
				f.period.Store(p << 1)
				f.recordLevel(cur, arena, rate, offeredTotal, "admit_period_double")
			}
		}
	}
}

// setLevelLocked commits a level transition: period reset to the new
// level's base, escalations bump the sketch epoch (gates halve the warmth
// a flood may have accumulated), and the transition is logged, traced,
// and counted.
func (f *Frontend) setLevelLocked(to Level, arena int64, rate float64, offered uint64) {
	from := Level(f.level.Load())
	f.level.Store(int32(to))
	f.period.Store(f.periodFor(to))
	f.levelChanges.Add(1)
	if int32(to) > f.levelMax.Load() {
		f.levelMax.Store(int32(to))
	}
	if to > from {
		f.levelEpoch.Add(1)
	}
	if f.opts.Logger != nil {
		f.opts.Logger.Info("admission level transition",
			"from", from.String(), "to", to.String(),
			"period", f.period.Load(),
			"arena_bytes", arena, "churn_per_1k", rate, "offered", offered)
	}
	f.recordLevel(to, arena, rate, offered, "admit_level")
}

// recordLevel writes a level event into the structural trace ring,
// reusing the split/merge event fields: Count carries the new level, Lo
// the arena bytes, Threshold the churn rate per 1000, N the offered
// weight at decision time.
func (f *Frontend) recordLevel(to Level, arena int64, rate float64, offered uint64, op string) {
	if f.opts.Trace == nil {
		return
	}
	f.opts.Trace.RecordAlways(obs.StructuralEvent{
		Op:        op,
		Count:     uint64(to),
		Lo:        uint64(arena),
		Threshold: rate,
		N:         offered,
	})
}

// Stats is a point-in-time summary of the frontend.
type Stats struct {
	Offered      uint64 // weight seen by the gates
	Admitted     uint64 // weight passed through to the tree
	Unadmitted   uint64 // weight refused (the ledger's gate-side mirror)
	Level        Level
	Period       uint64
	LevelChanges uint64
	LevelMax     Level
}

// Stats sums the per-gate counters and samples the control state.
func (f *Frontend) Stats() Stats {
	f.ctrlMu.Lock()
	gates := f.gates
	f.ctrlMu.Unlock()
	st := Stats{
		Level:        Level(f.level.Load()),
		Period:       f.period.Load(),
		LevelChanges: f.levelChanges.Load(),
		LevelMax:     Level(f.levelMax.Load()),
	}
	for _, g := range gates {
		st.Offered += g.offered.Load()
		st.Admitted += g.admitted.Load()
		st.Unadmitted += g.unadmitted.Load()
	}
	return st
}

// WatchdogState is a point-in-time capture of the watchdog's full
// control state — the levers and the hysteresis bookkeeping behind them —
// in the JSON shape diagnostic bundles embed. Stats covers the metrics a
// dashboard wants; this is what a postmortem wants: why the controller
// was (or wasn't) about to move.
type WatchdogState struct {
	Level        string `json:"level"`
	Period       uint64 `json:"period"`
	LevelMax     string `json:"level_max"`
	LevelChanges uint64 `json:"level_changes"`
	LevelEpoch   uint64 `json:"level_epoch"`
	Offered      uint64 `json:"offered"`
	Admitted     uint64 `json:"admitted"`
	Unadmitted   uint64 `json:"unadmitted"`
	Cold         uint64 `json:"cold"`
	ArenaBytes   int64  `json:"arena_bytes"`
	Gates        int    `json:"gates"`
	CalmWindows  int    `json:"calm_windows"`
	ChurnWindows int    `json:"churn_windows"`
	Cooldown     bool   `json:"cooldown"`
}

// WatchdogState samples the controller under its lock.
func (f *Frontend) WatchdogState() WatchdogState {
	f.ctrlMu.Lock()
	defer f.ctrlMu.Unlock()
	st := WatchdogState{
		Level:        Level(f.level.Load()).String(),
		Period:       f.period.Load(),
		LevelMax:     Level(f.levelMax.Load()).String(),
		LevelChanges: f.levelChanges.Load(),
		LevelEpoch:   f.levelEpoch.Load(),
		Gates:        len(f.gates),
		CalmWindows:  f.calmWindows,
		ChurnWindows: f.churnWindows,
		Cooldown:     f.cooldown,
	}
	for _, g := range f.gates {
		st.Offered += g.offered.Load()
		st.Admitted += g.admitted.Load()
		st.Unadmitted += g.unadmitted.Load()
		st.Cold += g.cold.Load()
		st.ArenaBytes += g.arenaBytes.Load()
	}
	return st
}

// Register exports the frontend's state as rap_admit_* metrics.
func (f *Frontend) Register(reg *obs.Registry) {
	reg.CounterFunc("rap_admit_offered_total",
		"Event weight seen by the admission gates.",
		func() float64 { return float64(f.Stats().Offered) })
	reg.CounterFunc("rap_admit_admitted_total",
		"Event weight admitted to the tree.",
		func() float64 { return float64(f.Stats().Admitted) })
	reg.CounterFunc("rap_admit_unadmitted_total",
		"Event weight refused by the admission gates.",
		func() float64 { return float64(f.Stats().Unadmitted) })
	reg.GaugeFunc("rap_admit_level",
		"Current degradation level (0 normal, 1 defensive, 2 siege).",
		func() float64 { return float64(f.level.Load()) })
	reg.GaugeFunc("rap_admit_level_max",
		"Highest degradation level reached since start.",
		func() float64 { return float64(f.levelMax.Load()) })
	reg.GaugeFunc("rap_admit_period",
		"Current geometric coin period for cold points.",
		func() float64 { return float64(f.period.Load()) })
	reg.CounterFunc("rap_admit_level_changes_total",
		"Degradation level transitions since start.",
		func() float64 { return float64(f.levelChanges.Load()) })
}
