// Package multidim implements the multi-dimensional extension the paper's
// conclusion sketches: "The applicability of RAP can be further extended
// with multi-dimensional profiling which allows adaptive ranges over two
// or more variables. With this extension it is possible to handle edge
// profiles, data-code correlation studies, and general tuple space
// profiles" (Section 6).
//
// A 2-D event (x, y) — a branch edge (source PC, target PC), a data-code
// pair (PC, address), a (value, latency) tuple — is mapped to a single
// key by bit interleaving (Morton / Z-order): key bits alternate x and y
// bits, most significant first. Under this mapping, a RAP tree node with
// an even prefix length is exactly an axis-aligned square in tuple space
// (a prefix of x crossed with an equal-length prefix of y), so the 1-D
// machinery — splits, batched merges, the ε·n error bound, the TCAM row
// encoding — carries over unchanged. The quadtree of Hershberger et
// al.'s adaptive spatial partitioning is recovered as the even-depth
// levels of the binary-interleaved tree.
package multidim

import (
	"fmt"
	"math/bits"
	"sort"

	"rap/internal/core"
)

// Tree2D is a two-dimensional RAP tree over [0,2^w) x [0,2^w).
type Tree2D struct {
	tree  *core.Tree
	xBits int
}

// Config2D parameterizes a 2-D tree.
type Config2D struct {
	// BitsPerDim is the width w of each dimension; the underlying key is
	// 2w bits, so w <= 32.
	BitsPerDim int
	// Epsilon is the RAP error bound.
	Epsilon float64
}

// DefaultConfig2D profiles 32-bit x 32-bit tuples (e.g. PC x PC edges) at
// eps = 1%.
func DefaultConfig2D() Config2D {
	return Config2D{BitsPerDim: 32, Epsilon: 0.01}
}

// New2D builds a 2-D RAP tree.
func New2D(cfg Config2D) (*Tree2D, error) {
	if cfg.BitsPerDim < 1 || cfg.BitsPerDim > 32 {
		return nil, fmt.Errorf("multidim: BitsPerDim %d out of range [1,32]", cfg.BitsPerDim)
	}
	c := core.DefaultConfig()
	c.UniverseBits = 2 * cfg.BitsPerDim
	// Branch 4 = one bit of x and one bit of y per level: every level of
	// the interleaved tree splits both dimensions once, the quadtree of
	// adaptive spatial partitioning.
	c.Branch = 4
	c.Epsilon = cfg.Epsilon
	t, err := core.New(c)
	if err != nil {
		return nil, err
	}
	return &Tree2D{tree: t, xBits: cfg.BitsPerDim}, nil
}

// Add records one occurrence of the tuple (x, y).
func (t *Tree2D) Add(x, y uint64) { t.AddN(x, y, 1) }

// AddN records weight occurrences of (x, y).
func (t *Tree2D) AddN(x, y, weight uint64) {
	t.tree.AddN(Interleave(x, y, t.xBits), weight)
}

// N returns the total tuple weight processed.
func (t *Tree2D) N() uint64 { return t.tree.N() }

// NodeCount returns the live counter count.
func (t *Tree2D) NodeCount() int { return t.tree.NodeCount() }

// MemoryBytes returns the memory footprint at the paper's 16 B per node.
func (t *Tree2D) MemoryBytes() int { return t.tree.MemoryBytes() }

// Finalize compacts the tree (one extra merge batch).
func (t *Tree2D) Finalize() core.Stats { return t.tree.Finalize() }

// Tree exposes the underlying 1-D tree over interleaved keys (for dumps
// and snapshots).
func (t *Tree2D) Tree() *core.Tree { return t.tree }

// Estimate returns a lower bound on the tuples inside the axis-aligned
// rectangle [xlo,xhi] x [ylo,yhi]: the summed counts of every live node
// whose decoded cell lies entirely inside the rectangle. This walks the
// tree once — O(live nodes) for any query shape — and preserves the 1-D
// lower-bound property (a node's count is attributed only when its whole
// cell is inside; partially overlapping cells contribute nothing).
func (t *Tree2D) Estimate(xlo, xhi, ylo, yhi uint64) uint64 {
	if xlo > xhi || ylo > yhi {
		return 0
	}
	var total uint64
	t.tree.Walk(func(n core.NodeInfo) bool {
		cxlo, cxhi, cylo, cyhi := t.cell(n)
		if cxlo >= xlo && cxhi <= xhi && cylo >= ylo && cyhi <= yhi {
			total += n.Count
		}
		return true
	})
	return total
}

// cell decodes a node's key range into its tuple-space rectangle.
func (t *Tree2D) cell(n core.NodeInfo) (xlo, xhi, ylo, yhi uint64) {
	suffix := bits.Len64(n.Hi - n.Lo)
	x, y := Deinterleave(n.Lo, t.xBits)
	xFree := suffix / 2
	yFree := suffix - xFree
	return x, x | lowMask(xFree), y, y | lowMask(yFree)
}

// HotCell is one hot region of tuple space.
type HotCell struct {
	XLo, XHi uint64
	YLo, YHi uint64
	Weight   uint64
	Frac     float64
}

// HotCells returns the hot regions at threshold theta, decoded back to
// tuple-space rectangles. Nodes at odd interleave depth (split in x but
// not yet in y) decode to 2:1 rectangles; even-depth nodes are squares.
// Sorted hottest first.
func (t *Tree2D) HotCells(theta float64) []HotCell {
	hot := t.tree.HotRanges(theta)
	out := make([]HotCell, 0, len(hot))
	for _, h := range hot {
		suffix := bits.Len64(h.Hi - h.Lo) // free key bits of the node
		x, y := Deinterleave(h.Lo, t.xBits)
		// A key prefix fixes x and y bits alternately, x first (x-major
		// interleave), so the suffix leaves floor(suffix/2) x bits and
		// ceil(suffix/2) y bits free.
		xFree := suffix / 2
		yFree := suffix - xFree
		out = append(out, HotCell{
			XLo: x, XHi: x | lowMask(xFree),
			YLo: y, YHi: y | lowMask(yFree),
			Weight: h.Weight,
			Frac:   h.Frac,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frac > out[j].Frac })
	return out
}

func lowMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// Interleave builds the Z-order key of (x, y) with w bits per dimension:
// bit i of x lands at key bit 2i+1, bit i of y at key bit 2i (x-major).
func Interleave(x, y uint64, w int) uint64 {
	x &= lowMask(w)
	y &= lowMask(w)
	return spread(x)<<1 | spread(y)
}

// Deinterleave inverts Interleave.
func Deinterleave(key uint64, w int) (x, y uint64) {
	x = compact(key >> 1)
	y = compact(key)
	return x & lowMask(w), y & lowMask(w)
}

// spread inserts a zero bit above every bit of v (32 -> 64 bits).
func spread(v uint64) uint64 {
	v &= 0xFFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact drops every other bit of v (inverse of spread on even bits).
func compact(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}
