package multidim

import (
	"testing"
	"testing/quick"

	"rap/internal/stats"
)

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		key := Interleave(uint64(x), uint64(y), 32)
		gx, gy := Deinterleave(key, 32)
		return gx == uint64(x) && gy == uint64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveKnownValues(t *testing.T) {
	cases := []struct {
		x, y, key uint64
	}{
		{0, 0, 0},
		{1, 0, 2}, // x bit 0 -> key bit 1
		{0, 1, 1}, // y bit 0 -> key bit 0
		{1, 1, 3},
		{0b10, 0b01, 0b1001}, // x1 -> bit 3, y0 -> bit 0
	}
	for _, tc := range cases {
		if got := Interleave(tc.x, tc.y, 32); got != tc.key {
			t.Errorf("Interleave(%b,%b) = %b, want %b", tc.x, tc.y, got, tc.key)
		}
	}
}

func TestInterleaveZOrderLocality(t *testing.T) {
	// Points in the same aligned square share a key prefix: the property
	// that makes the 1-D tree's ranges meaningful in 2-D.
	a := Interleave(0x1000, 0x2000, 32)
	b := Interleave(0x1001, 0x2001, 32)
	far := Interleave(0x80001000, 0x2000, 32)
	if a>>8 != b>>8 {
		t.Errorf("neighbors do not share a prefix: %x vs %x", a, b)
	}
	if a>>62 == far>>62 {
		t.Errorf("distant points share the top prefix: %x vs %x", a, far)
	}
}

func TestNew2DValidation(t *testing.T) {
	for _, w := range []int{0, 33, -1} {
		if _, err := New2D(Config2D{BitsPerDim: w, Epsilon: 0.01}); err == nil {
			t.Errorf("accepted BitsPerDim %d", w)
		}
	}
	if _, err := New2D(DefaultConfig2D()); err != nil {
		t.Fatal(err)
	}
}

func TestHotEdgeDetection(t *testing.T) {
	// An edge-profile scenario: one hot branch edge dominates.
	tr, err := New2D(Config2D{BitsPerDim: 16, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(1)
	const n = 200_000
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			tr.Add(0x4000, 0x8000) // hot edge, 2/3 of the stream
		} else {
			tr.Add(rng.Uint64n(1<<16), rng.Uint64n(1<<16))
		}
	}
	tr.Finalize()
	if tr.N() != n {
		t.Fatalf("N = %d", tr.N())
	}

	cells := tr.HotCells(0.10)
	if len(cells) == 0 {
		t.Fatal("no hot cells")
	}
	top := cells[0]
	if top.XLo != 0x4000 || top.XHi != 0x4000 || top.YLo != 0x8000 || top.YHi != 0x8000 {
		t.Fatalf("hottest cell = (%x-%x, %x-%x), want the singleton edge",
			top.XLo, top.XHi, top.YLo, top.YHi)
	}
	if top.Frac < 0.60 {
		t.Fatalf("hot edge fraction %.3f, want ~0.67", top.Frac)
	}
}

func TestRectangleEstimateLowerBound(t *testing.T) {
	tr, err := New2D(Config2D{BitsPerDim: 12, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(7)
	type pt struct{ x, y uint64 }
	var pts []pt
	for i := 0; i < 100_000; i++ {
		var p pt
		if rng.Intn(2) == 0 {
			p = pt{rng.Uint64n(64) + 512, rng.Uint64n(64) + 1024} // hot cluster
		} else {
			p = pt{rng.Uint64n(1 << 12), rng.Uint64n(1 << 12)}
		}
		pts = append(pts, p)
		tr.Add(p.x, p.y)
	}
	tr.Finalize()

	for trial := 0; trial < 40; trial++ {
		xlo, xhi := rng.Uint64n(1<<12), rng.Uint64n(1<<12)
		if xlo > xhi {
			xlo, xhi = xhi, xlo
		}
		ylo, yhi := rng.Uint64n(1<<12), rng.Uint64n(1<<12)
		if ylo > yhi {
			ylo, yhi = yhi, ylo
		}
		var truth uint64
		for _, p := range pts {
			if p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi {
				truth++
			}
		}
		est := tr.Estimate(xlo, xhi, ylo, yhi)
		if est > truth {
			t.Fatalf("rect (%d-%d, %d-%d): estimate %d exceeds truth %d",
				xlo, xhi, ylo, yhi, est, truth)
		}
	}
	// The hot cluster must be well estimated.
	est := tr.Estimate(512, 575, 1024, 1087)
	if frac := float64(est) / float64(tr.N()); frac < 0.40 {
		t.Fatalf("hot cluster estimate %.3f of stream, want ~0.5", frac)
	}
}

func TestEstimateFullSpace(t *testing.T) {
	tr, err := New2D(Config2D{BitsPerDim: 8, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		tr.Add(uint64(i%256), uint64((i*7)%256))
	}
	if got := tr.Estimate(0, 255, 0, 255); got != 10_000 {
		t.Fatalf("full-space estimate %d, want 10000 (no event lost)", got)
	}
}

func TestMemoryStaysBounded2D(t *testing.T) {
	tr, err := New2D(Config2D{BitsPerDim: 32, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewSplitMix64(3)
	for i := 0; i < 200_000; i++ {
		tr.Add(rng.Uint64(), rng.Uint64()) // adversarial uniform tuples
	}
	st := tr.Finalize()
	if st.Nodes > 12_000 {
		t.Fatalf("2-D tree grew to %d nodes on uniform input", st.Nodes)
	}
	if tr.NodeCount() != st.Nodes || tr.MemoryBytes() != st.MemoryBytes {
		t.Fatal("accessors disagree with stats")
	}
	if tr.Tree() == nil {
		t.Fatal("underlying tree not exposed")
	}
}
