package mini

import "fmt"

// Builtin function names recognized by the compiler. array(n) allocates,
// len(a) reads the header, rand() draws from the VM's deterministic PRNG,
// print(x) appends to the VM's captured output.
var builtinArity = map[string]int{
	"array": 1,
	"len":   1,
	"rand":  0,
	"print": 1,
}

// Compile parses and compiles Mini source to bytecode. The entry point is
// the function named main, which must take no parameters.
func Compile(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog)
}

// CompileProgram compiles a parsed AST.
func CompileProgram(prog *Program) (*Compiled, error) {
	fnIndex := make(map[string]int)
	for i, fn := range prog.Funcs {
		if _, dup := fnIndex[fn.Name]; dup {
			return nil, fmt.Errorf("mini: line %d: duplicate function %q", fn.Line, fn.Name)
		}
		if _, isBuiltin := builtinArity[fn.Name]; isBuiltin {
			return nil, fmt.Errorf("mini: line %d: %q shadows a builtin", fn.Line, fn.Name)
		}
		fnIndex[fn.Name] = i
	}
	mainIdx, ok := fnIndex["main"]
	if !ok {
		return nil, fmt.Errorf("mini: no main function")
	}
	if len(prog.Funcs[mainIdx].Params) != 0 {
		return nil, fmt.Errorf("mini: main must take no parameters")
	}

	out := &Compiled{Main: mainIdx}
	pcBase := uint64(CodeBase)
	for _, fn := range prog.Funcs {
		fc := &fnCompiler{
			prog:    prog,
			fnIndex: fnIndex,
			chunk:   &Chunk{Name: fn.Name, NumParams: len(fn.Params), PCBase: pcBase},
		}
		if err := fc.compile(fn); err != nil {
			return nil, err
		}
		out.Chunks = append(out.Chunks, fc.chunk)
		pcBase += uint64(len(fc.chunk.Code)) * instrBytes
	}
	return out, nil
}

// fnCompiler compiles one function body.
type fnCompiler struct {
	prog    *Program
	fnIndex map[string]int
	chunk   *Chunk

	scopes   []map[string]int // lexical scopes: name -> slot
	nextSlot int
	maxSlot  int

	blockTargets map[int]bool // instruction indices that begin blocks
}

func (fc *fnCompiler) compile(fn *FuncDecl) error {
	fc.blockTargets = map[int]bool{0: true}
	fc.pushScope()
	for _, p := range fn.Params {
		if _, err := fc.declare(p, fn.Line); err != nil {
			return err
		}
	}
	if err := fc.block(fn.Body); err != nil {
		return err
	}
	fc.popScope()
	// Implicit return 0 at the end of every function.
	fc.emit(OpConst, 0)
	fc.emit(OpReturn, 0)
	fc.chunk.NumLocals = fc.maxSlot
	fc.finishBlocks()
	return nil
}

// finishBlocks converts the collected jump-target set into the chunk's
// BlockStart table: a basic block begins at the entry, at every jump
// target, and after every jump/call/return.
func (fc *fnCompiler) finishBlocks() {
	starts := make([]bool, len(fc.chunk.Code))
	for t := range fc.blockTargets {
		if t < len(starts) {
			starts[t] = true
		}
	}
	for i, ins := range fc.chunk.Code {
		switch ins.Op {
		case OpJump, OpJumpIf, OpCall, OpReturn:
			if i+1 < len(starts) {
				starts[i+1] = true
			}
		}
	}
	fc.chunk.BlockStart = starts
}

func (fc *fnCompiler) pushScope() { fc.scopes = append(fc.scopes, map[string]int{}) }

func (fc *fnCompiler) popScope() {
	top := fc.scopes[len(fc.scopes)-1]
	fc.nextSlot -= len(top)
	fc.scopes = fc.scopes[:len(fc.scopes)-1]
}

func (fc *fnCompiler) declare(name string, line int) (int, error) {
	top := fc.scopes[len(fc.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, fmt.Errorf("mini: line %d: %q redeclared in this scope", line, name)
	}
	slot := fc.nextSlot
	top[name] = slot
	fc.nextSlot++
	if fc.nextSlot > fc.maxSlot {
		fc.maxSlot = fc.nextSlot
	}
	return slot, nil
}

func (fc *fnCompiler) resolve(name string, line int) (int, error) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if slot, ok := fc.scopes[i][name]; ok {
			return slot, nil
		}
	}
	return 0, fmt.Errorf("mini: line %d: undefined variable %q", line, name)
}

func (fc *fnCompiler) emit(op Op, arg int64) int {
	fc.chunk.Code = append(fc.chunk.Code, Instr{Op: op, Arg: arg})
	return len(fc.chunk.Code) - 1
}

// patch sets the operand of a previously emitted jump to the current
// instruction index and records the target as a block start.
func (fc *fnCompiler) patch(at int) {
	fc.chunk.Code[at].Arg = int64(len(fc.chunk.Code))
	fc.blockTargets[len(fc.chunk.Code)] = true
}

func (fc *fnCompiler) block(b *Block) error {
	fc.pushScope()
	defer fc.popScope()
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnCompiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return fc.block(st)

	case *LetStmt:
		if err := fc.expr(st.Init); err != nil {
			return err
		}
		slot, err := fc.declare(st.Name, st.Line)
		if err != nil {
			return err
		}
		fc.emit(OpStoreLocal, int64(slot))
		return nil

	case *AssignStmt:
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		slot, err := fc.resolve(st.Name, st.Line)
		if err != nil {
			return err
		}
		fc.emit(OpStoreLocal, int64(slot))
		return nil

	case *IndexAssignStmt:
		if err := fc.expr(st.Target); err != nil {
			return err
		}
		if err := fc.expr(st.Index); err != nil {
			return err
		}
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		fc.emit(OpAStore, 0)
		return nil

	case *IfStmt:
		if err := fc.expr(st.Cond); err != nil {
			return err
		}
		jElse := fc.emit(OpJumpIf, 0)
		if err := fc.block(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			fc.patch(jElse)
			return nil
		}
		jEnd := fc.emit(OpJump, 0)
		fc.patch(jElse)
		if err := fc.stmt(st.Else); err != nil {
			return err
		}
		fc.patch(jEnd)
		return nil

	case *WhileStmt:
		top := len(fc.chunk.Code)
		fc.blockTargets[top] = true
		if err := fc.expr(st.Cond); err != nil {
			return err
		}
		jOut := fc.emit(OpJumpIf, 0)
		if err := fc.block(st.Body); err != nil {
			return err
		}
		fc.emit(OpJump, int64(top))
		fc.patch(jOut)
		return nil

	case *ReturnStmt:
		if st.Value != nil {
			if err := fc.expr(st.Value); err != nil {
				return err
			}
		} else {
			fc.emit(OpConst, 0)
		}
		fc.emit(OpReturn, 0)
		return nil

	case *ExprStmt:
		if err := fc.expr(st.X); err != nil {
			return err
		}
		fc.emit(OpPop, 0)
		return nil
	}
	return fmt.Errorf("mini: unknown statement %T", s)
}

var binOpcode = map[Kind]Op{
	PLUS: OpAdd, MINUS: OpSub, STAR: OpMul, SLASH: OpDiv, PERCENT: OpMod,
	AMP: OpAnd, PIPE: OpOr, CARET: OpXor, SHL: OpShl, SHR: OpShr,
	EQ: OpEq, NE: OpNe, LT: OpLt, GT: OpGt, LE: OpLe, GE: OpGe,
}

func (fc *fnCompiler) expr(e Expr) error {
	switch x := e.(type) {
	case *NumberLit:
		fc.emit(OpConst, x.Value)
		return nil

	case *Ident:
		slot, err := fc.resolve(x.Name, x.Line)
		if err != nil {
			return err
		}
		fc.emit(OpLoadLocal, int64(slot))
		return nil

	case *Unary:
		if err := fc.expr(x.X); err != nil {
			return err
		}
		if x.Op == MINUS {
			fc.emit(OpNeg, 0)
		} else {
			fc.emit(OpNot, 0)
		}
		return nil

	case *Binary:
		if x.Op == ANDAND || x.Op == OROR {
			return fc.shortCircuit(x)
		}
		if err := fc.expr(x.L); err != nil {
			return err
		}
		if err := fc.expr(x.R); err != nil {
			return err
		}
		op, ok := binOpcode[x.Op]
		if !ok {
			return fmt.Errorf("mini: line %d: unsupported operator %v", x.Line, x.Op)
		}
		fc.emit(op, 0)
		return nil

	case *Index:
		if err := fc.expr(x.Target); err != nil {
			return err
		}
		if err := fc.expr(x.Idx); err != nil {
			return err
		}
		fc.emit(OpALoad, 0)
		return nil

	case *Call:
		return fc.call(x)
	}
	return fmt.Errorf("mini: unknown expression %T", e)
}

// shortCircuit compiles && and || with proper early exit, normalizing the
// result to 0 or 1.
func (fc *fnCompiler) shortCircuit(x *Binary) error {
	if err := fc.expr(x.L); err != nil {
		return err
	}
	// Normalize left to a boolean.
	fc.emit(OpConst, 0)
	fc.emit(OpNe, 0)
	if x.Op == ANDAND {
		// if left is false, result is 0
		jShort := fc.emit(OpJumpIf, 0)
		if err := fc.expr(x.R); err != nil {
			return err
		}
		fc.emit(OpConst, 0)
		fc.emit(OpNe, 0)
		jEnd := fc.emit(OpJump, 0)
		fc.patch(jShort)
		fc.emit(OpConst, 0)
		fc.patch(jEnd)
		return nil
	}
	// ||: if left is false, evaluate right; else result is 1.
	jEval := fc.emit(OpJumpIf, 0)
	fc.emit(OpConst, 1)
	jEnd := fc.emit(OpJump, 0)
	fc.patch(jEval)
	if err := fc.expr(x.R); err != nil {
		return err
	}
	fc.emit(OpConst, 0)
	fc.emit(OpNe, 0)
	fc.patch(jEnd)
	return nil
}

func (fc *fnCompiler) call(x *Call) error {
	if arity, isBuiltin := builtinArity[x.Name]; isBuiltin {
		if len(x.Args) != arity {
			return fmt.Errorf("mini: line %d: %s takes %d argument(s), got %d",
				x.Line, x.Name, arity, len(x.Args))
		}
		for _, a := range x.Args {
			if err := fc.expr(a); err != nil {
				return err
			}
		}
		switch x.Name {
		case "array":
			fc.emit(OpNewArray, 0)
		case "len":
			fc.emit(OpLen, 0)
		case "rand":
			fc.emit(OpRand, 0)
		case "print":
			fc.emit(OpPrint, 0)
			fc.emit(OpConst, 0) // print yields 0
		}
		return nil
	}
	idx, ok := fc.fnIndex[x.Name]
	if !ok {
		return fmt.Errorf("mini: line %d: undefined function %q", x.Line, x.Name)
	}
	if want := len(fc.prog.Funcs[idx].Params); len(x.Args) != want {
		return fmt.Errorf("mini: line %d: %s takes %d argument(s), got %d",
			x.Line, x.Name, want, len(x.Args))
	}
	for _, a := range x.Args {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	fc.emit(OpCall, int64(idx))
	return nil
}
