package mini

import (
	"strings"
	"testing"
)

func compileT(t *testing.T, src string) *Compiled {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runProg(t *testing.T, p *Compiled, seed uint64) (int64, []int64, uint64) {
	t.Helper()
	vm := NewVM(p, Config{Seed: seed})
	ret, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	return ret, vm.Output(), vm.Steps()
}

func TestOptimizeFoldsConstants(t *testing.T) {
	p := compileT(t, "fn main() { return 2 + 3 * 4; }")
	o := Optimize(p)
	ret, _, steps := runProg(t, o, 0)
	if ret != 14 {
		t.Fatalf("optimized result = %d", ret)
	}
	// 2+3*4 folds to a single const: const, ret-value path only.
	_, _, rawSteps := runProg(t, p, 0)
	if steps >= rawSteps {
		t.Fatalf("optimization did not shorten execution: %d vs %d", steps, rawSteps)
	}
	dis := o.Disassemble()
	if !strings.Contains(dis, "const     14") {
		t.Errorf("folded constant missing from disassembly:\n%s", dis)
	}
}

func TestOptimizeUnaryFolding(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"fn main() { return -(3); }", -3},
		{"fn main() { return !0; }", 1},
		{"fn main() { return !(1 + 2); }", 0},
		{"fn main() { return -(-(5)); }", 5},
	}
	for _, tc := range cases {
		o := Optimize(compileT(t, tc.src))
		if ret, _, _ := runProg(t, o, 0); ret != tc.want {
			t.Errorf("%s = %d, want %d", tc.src, ret, tc.want)
		}
	}
}

func TestOptimizeStrengthReduction(t *testing.T) {
	p := compileT(t, "fn main() { let x = 5; return x * 8; }")
	o := Optimize(p)
	dis := o.Disassemble()
	if !strings.Contains(dis, "shl") {
		t.Errorf("mul by 8 not reduced to shl:\n%s", dis)
	}
	if ret, _, _ := runProg(t, o, 0); ret != 40 {
		t.Fatalf("result = %d", ret)
	}
	// Negative operands keep the same wrapping semantics.
	p2 := Optimize(compileT(t, "fn main() { let x = 0 - 7; return x * 4; }"))
	if ret, _, _ := runProg(t, p2, 0); ret != -28 {
		t.Fatalf("negative strength reduction = %d", ret)
	}
}

func TestOptimizePreservesDivByZeroError(t *testing.T) {
	p := Optimize(compileT(t, "fn main() { return 1 / 0; }"))
	vm := NewVM(p, Config{})
	if _, err := vm.Run(); err == nil {
		t.Fatal("folded away a division by zero")
	}
}

func TestOptimizePreservesJumpTargets(t *testing.T) {
	// Constants adjacent to loop heads must not fold across the block
	// boundary; the loop must still terminate with the right result.
	src := `
fn main() {
  let sum = 0;
  let i = 0;
  while (i < 3 * 4) {
    sum = sum + 2 * 3;
    i = i + 1;
  }
  return sum;
}`
	p := compileT(t, src)
	o := Optimize(p)
	ret, _, steps := runProg(t, o, 0)
	want, _, rawSteps := runProg(t, p, 0)
	if ret != want || ret != 72 {
		t.Fatalf("optimized loop = %d, want %d", ret, want)
	}
	if steps >= rawSteps {
		t.Fatalf("loop not shortened: %d vs %d", steps, rawSteps)
	}
}

func TestOptimizeAllProgramsEquivalent(t *testing.T) {
	// The real benchmark programs must behave identically (results and
	// printed output) and run in fewer or equal steps.
	for _, name := range ProgramNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := LoadProgram(name)
			if err != nil {
				t.Fatal(err)
			}
			o := Optimize(p)
			for _, seed := range []uint64{1, 42} {
				r1, out1, s1 := runProg(t, p, seed)
				r2, out2, s2 := runProg(t, o, seed)
				if r1 != r2 {
					t.Fatalf("seed %d: results differ %d vs %d", seed, r1, r2)
				}
				if len(out1) != len(out2) {
					t.Fatalf("seed %d: output lengths differ", seed)
				}
				for i := range out1 {
					if out1[i] != out2[i] {
						t.Fatalf("seed %d: output %d differs", seed, i)
					}
				}
				if s2 > s1 {
					t.Fatalf("seed %d: optimized runs longer (%d vs %d)", seed, s2, s1)
				}
			}
		})
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	p := compileT(t, "fn main() { return 1 + 1; }")
	before := p.Disassemble()
	Optimize(p)
	if p.Disassemble() != before {
		t.Fatal("Optimize mutated its input")
	}
}

func TestOptimizedProgramStillProfilable(t *testing.T) {
	// Block hooks must keep firing at valid, aligned PCs after rewriting.
	o := Optimize(compileT(t, `
fn f(n) { if (n < 2) { return n; } return f(n - 1) + f(n - 2); }
fn main() { return f(12); }`))
	var blocks int
	vm := NewVM(o, Config{Hooks: Hooks{OnBlock: func(pc uint64) {
		blocks++
		if pc < CodeBase || (pc-CodeBase)%4 != 0 {
			panic("bad block PC")
		}
	}}})
	ret, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 144 || blocks == 0 {
		t.Fatalf("ret=%d blocks=%d", ret, blocks)
	}
}
