package mini

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string, cfg Config) (int64, *VM) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vm := NewVM(prog, cfg)
	ret, err := vm.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ret, vm
}

func TestLexerBasics(t *testing.T) {
	l := NewLexer("fn x1 123 0x1F <= << // comment\n }")
	var kinds []Kind
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, tok.Kind)
		if tok.Kind == EOF {
			break
		}
	}
	want := []Kind{FN, IDENT, NUMBER, NUMBER, LE, SHL, RBRACE, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	l := NewLexer("42 0x2A 0")
	for _, want := range []int64{42, 42, 0} {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind != NUMBER || tok.Num != want {
			t.Fatalf("token = %+v, want number %d", tok, want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "#", "0x"} {
		l := NewLexer(src)
		if _, err := l.Next(); err == nil {
			t.Errorf("lexer accepted %q", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-5 + 2", -3},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"12 & 10", 8},
		{"12 | 3", 15},
		{"12 ^ 10", 6},
		{"3 < 4", 1},
		{"4 <= 4", 1},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"!0", 1},
		{"!7", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
		{"true + true", 2},
		{"false", 0},
		{"1 + 2 == 3 && 4 > 1", 1},
	}
	for _, tc := range cases {
		ret, _ := run(t, "fn main() { return "+tc.expr+"; }", Config{})
		if ret != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, ret, tc.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not run when the left is false: a
	// division by zero there would error.
	src := `
fn boom() { return 1 / 0; }
fn main() {
  if (0 && boom()) { return 1; }
  if (1 || boom()) { return 42; }
  return 0;
}`
	ret, _ := run(t, src, Config{})
	if ret != 42 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
fn main() {
  let sum = 0;
  let i = 0;
  while (i < 10) {
    if (i % 2 == 0) {
      sum = sum + i;
    } else {
      if (i == 5) {
        sum = sum + 100;
      }
    }
    i = i + 1;
  }
  return sum;
}`
	ret, _ := run(t, src, Config{})
	if ret != 120 { // 0+2+4+6+8 + 100
		t.Fatalf("ret = %d, want 120", ret)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() { return fib(15); }`
	ret, _ := run(t, src, Config{})
	if ret != 610 {
		t.Fatalf("fib(15) = %d, want 610", ret)
	}
}

func TestArrays(t *testing.T) {
	src := `
fn main() {
  let a = array(10);
  let i = 0;
  while (i < len(a)) {
    a[i] = i * i;
    i = i + 1;
  }
  return a[7] + len(a);
}`
	ret, _ := run(t, src, Config{})
	if ret != 59 {
		t.Fatalf("ret = %d, want 59", ret)
	}
}

func TestPrintOutput(t *testing.T) {
	_, vm := run(t, "fn main() { print(3); print(1 + 1); return 0; }", Config{})
	out := vm.Output()
	if len(out) != 2 || out[0] != 3 || out[1] != 2 {
		t.Fatalf("output = %v", out)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := "fn main() { return rand() % 1000; }"
	a, _ := run(t, src, Config{Seed: 7})
	b, _ := run(t, src, Config{Seed: 7})
	c, _ := run(t, src, Config{Seed: 8})
	if a != b {
		t.Fatal("same seed diverged")
	}
	if a == c {
		t.Log("different seeds coincided (possible but unlikely)")
	}
	if a < 0 {
		t.Fatal("rand returned negative")
	}
}

func TestScoping(t *testing.T) {
	src := `
fn main() {
  let x = 1;
  {
    let x = 2;
    if (x != 2) { return 100; }
  }
  return x;
}`
	ret, _ := run(t, src, Config{})
	if ret != 1 {
		t.Fatalf("ret = %d, want outer x", ret)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":           "fn f() { return 1; }",
		"main with params":  "fn main(x) { return x; }",
		"dup function":      "fn f() { return 1; } fn f() { return 2; } fn main() { return 0; }",
		"undefined var":     "fn main() { return x; }",
		"undefined fn":      "fn main() { return g(); }",
		"redeclare":         "fn main() { let x = 1; let x = 2; return x; }",
		"bad arity":         "fn f(a, b) { return a; } fn main() { return f(1); }",
		"builtin arity":     "fn main() { return len(); }",
		"shadow builtin":    "fn len(a) { return 0; } fn main() { return 0; }",
		"assign to call":    "fn f() { return 1; } fn main() { f() = 2; return 0; }",
		"call non-ident":    "fn main() { return (1)(2); }",
		"missing semicolon": "fn main() { return 1 }",
		"unclosed brace":    "fn main() { return 1;",
		"empty program":     "",
		"stray tokens":      "fn main() { return 0; } xyz",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"div by zero":    "fn main() { let z = 0; return 1 / z; }",
		"mod by zero":    "fn main() { let z = 0; return 1 % z; }",
		"oob read":       "fn main() { let a = array(3); return a[3]; }",
		"oob write":      "fn main() { let a = array(3); a[0-1] = 1; return 0; }",
		"bad handle":     "fn main() { let a = 999999; return a[0]; }",
		"len of scalar":  "fn main() { return len(12345678); }",
		"negative alloc": "fn main() { return array(0 - 5); }",
		"infinite loop":  "fn main() { while (1) { } return 0; }",
		"deep recursion": "fn f(n) { return f(n + 1); } fn main() { return f(0); }",
	}
	for name, src := range cases {
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: compile error: %v", name, err)
		}
		vm := NewVM(prog, Config{MaxSteps: 1_000_000})
		if _, err := vm.Run(); err == nil {
			t.Errorf("%s: ran without error", name)
		}
	}
}

func TestDisassemble(t *testing.T) {
	prog, err := Compile("fn main() { let x = 1; while (x < 3) { x = x + 1; } return x; }")
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	for _, want := range []string{"fn main", "jumpifz", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestHooksEmitSaneEvents(t *testing.T) {
	src := `
fn main() {
  let a = array(4);
  a[0] = 7;
  let x = a[0];
  return x;
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var blocks, loads, stores int
	var heapLoadSeen bool
	cfg := Config{Hooks: Hooks{
		OnBlock: func(pc uint64) {
			blocks++
			if pc < CodeBase {
				t.Errorf("block PC %x below code base", pc)
			}
		},
		OnLoad: func(addr, value uint64) {
			loads++
			if addr >= HeapBase && value == 7 {
				heapLoadSeen = true
			}
			if addr < StackBase && addr < HeapBase {
				t.Errorf("load address %x outside stack/heap", addr)
			}
		},
		OnStore: func(addr, value uint64) { stores++ },
	}}
	vm := NewVM(prog, cfg)
	ret, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Fatalf("ret = %d", ret)
	}
	if blocks == 0 || loads == 0 || stores == 0 {
		t.Fatalf("hooks fired blocks=%d loads=%d stores=%d", blocks, loads, stores)
	}
	if !heapLoadSeen {
		t.Error("never saw the heap load of value 7")
	}
}

func TestBlockPCsAlignAndStayInText(t *testing.T) {
	prog, err := LoadProgram("graph")
	if err != nil {
		t.Fatal(err)
	}
	var maxPC uint64
	for _, c := range prog.Chunks {
		end := c.PC(len(c.Code) - 1)
		if end > maxPC {
			maxPC = end
		}
	}
	vm := NewVM(prog, Config{Seed: 1, Hooks: Hooks{OnBlock: func(pc uint64) {
		if pc < CodeBase || pc > maxPC {
			t.Fatalf("block PC %x outside text [%x,%x]", pc, CodeBase, maxPC)
		}
		if (pc-CodeBase)%4 != 0 {
			t.Fatalf("block PC %x not instruction aligned", pc)
		}
	}}})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllProgramsRun(t *testing.T) {
	for _, name := range ProgramNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog, err := LoadProgram(name)
			if err != nil {
				t.Fatal(err)
			}
			vm := NewVM(prog, Config{Seed: 42})
			ret, err := vm.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(vm.Output()) == 0 {
				t.Error("program printed nothing")
			}
			if vm.Steps() < 100_000 {
				t.Errorf("program too short for a trace source: %d steps", vm.Steps())
			}
			// Determinism.
			vm2 := NewVM(prog, Config{Seed: 42})
			ret2, err := vm2.Run()
			if err != nil || ret2 != ret {
				t.Fatalf("rerun diverged: %d vs %d (%v)", ret, ret2, err)
			}
		})
	}
	if _, err := LoadProgram("nope"); err == nil {
		t.Error("LoadProgram accepted unknown name")
	}
}

func TestStoreProgramLoadsZeros(t *testing.T) {
	// The vortex stand-in must produce a meaningful share of zero-valued
	// heap loads for the zero-load profile.
	prog, err := LoadProgram("store")
	if err != nil {
		t.Fatal(err)
	}
	var heapLoads, zeroLoads int
	vm := NewVM(prog, Config{Seed: 3, Hooks: Hooks{OnLoad: func(addr, value uint64) {
		if addr >= HeapBase {
			heapLoads++
			if value == 0 {
				zeroLoads++
			}
		}
	}}})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	frac := float64(zeroLoads) / float64(heapLoads)
	if frac < 0.2 {
		t.Errorf("zero-load fraction %.3f too low for the store program", frac)
	}
}
