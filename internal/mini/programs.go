package mini

import (
	"fmt"
	"sort"
)

// Benchmark programs written in Mini. Each mirrors the flavour of one of
// the paper's SPEC workloads: a compressor (gzip/bzip2), a tokenizer with
// symbol tables (parser/gcc), a pointer-chasing graph optimizer (mcf), a
// placement annealer (vpr), and an object store (vortex). The `scale`
// local controls run length so callers can trade trace length for time.

// Programs returns the named benchmark programs' source code.
func Programs() map[string]string {
	return map[string]string{
		"compress": progCompress,
		"tokens":   progTokens,
		"graph":    progGraph,
		"anneal":   progAnneal,
		"store":    progStore,
		"sort":     progSort,
		"matrix":   progMatrix,
	}
}

// ProgramNames returns the program names sorted.
func ProgramNames() []string {
	ps := Programs()
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadProgram compiles a named benchmark program.
func LoadProgram(name string) (*Compiled, error) {
	src, ok := Programs()[name]
	if !ok {
		return nil, fmt.Errorf("mini: unknown program %q (have %v)", name, ProgramNames())
	}
	return Compile(src)
}

// progCompress: run-length + match compression over a pseudo-random but
// skewed byte buffer — the gzip/bzip2 stand-in. Inner loops scan a window
// for the longest match, the classic hot region.
const progCompress = `
fn gen(buf, n) {
  let i = 0;
  let prev = 0;
  while (i < n) {
    let r = rand() % 100;
    if (r < 55) {
      buf[i] = prev;           // runs dominate
    } else {
      if (r < 85) {
        buf[i] = rand() % 16;  // small alphabet
      } else {
        buf[i] = rand() % 250;
      }
      prev = buf[i];
    }
    i = i + 1;
  }
  return 0;
}

fn bestmatch(buf, pos, window) {
  let best = 0;
  let start = 0;
  if (pos > window) { start = pos - window; }
  let j = start;
  while (j < pos) {
    let k = 0;
    while (pos + k < len(buf) && buf[j + k] == buf[pos + k] && k < 32) {
      k = k + 1;
    }
    if (k > best) { best = k; }
    j = j + 1;
  }
  return best;
}

fn main() {
  let scale = 10000;
  let buf = array(scale);
  gen(buf, scale);
  let out = array(scale);
  let outn = 0;
  let pos = 0;
  while (pos < scale) {
    let m = bestmatch(buf, pos, 48);
    if (m > 2) {
      out[outn] = m * 256 + buf[pos];
      pos = pos + m;
    } else {
      out[outn] = buf[pos];
      pos = pos + 1;
    }
    outn = outn + 1;
  }
  print(outn);
  return outn;
}
`

// progTokens: tokenize a synthetic character stream and count symbol
// frequencies through an open-addressing hash table — the parser/gcc
// stand-in with data-dependent table probing.
const progTokens = `
fn hash(x) {
  let h = x * 2654435761;
  h = h ^ (h >> 13);
  if (h < 0) { h = -h; }
  return h;
}

fn insert(keys, counts, cap, sym) {
  let slot = hash(sym) % cap;
  let probes = 0;
  while (probes < cap) {
    if (counts[slot] == 0) {
      keys[slot] = sym;
      counts[slot] = 1;
      return slot;
    }
    if (keys[slot] == sym) {
      counts[slot] = counts[slot] + 1;
      return slot;
    }
    slot = (slot + 1) % cap;
    probes = probes + 1;
  }
  return -1;
}

fn main() {
  let scale = 12000;
  let cap = 4096;
  let keys = array(cap);
  let counts = array(cap);
  let i = 0;
  let word = 0;
  let inserted = 0;
  while (i < scale) {
    let c = rand() % 64;
    if (c < 8) {
      // separator: flush the word
      if (word != 0) {
        if (insert(keys, counts, cap, word) >= 0) {
          inserted = inserted + 1;
        }
        word = 0;
      }
    } else {
      word = (word * 61 + c) % 100003;
    }
    i = i + 1;
  }
  // histogram of counts, parser-style statistics
  let total = 0;
  let j = 0;
  while (j < cap) {
    total = total + counts[j];
    j = j + 1;
  }
  print(inserted);
  print(total);
  return total;
}
`

// progGraph: Bellman-Ford-ish relaxation over a random sparse graph in
// adjacency arrays — the mcf stand-in: irregular, pointer-like index
// chasing with large arrays.
const progGraph = `
fn main() {
  let nodes = 1200;
  let degree = 4;
  let edges = nodes * degree;
  let to = array(edges);
  let weight = array(edges);
  let dist = array(nodes);

  let e = 0;
  while (e < edges) {
    to[e] = rand() % nodes;
    weight[e] = rand() % 64 + 1;
    e = e + 1;
  }
  let i = 0;
  while (i < nodes) {
    dist[i] = 1 << 30;
    i = i + 1;
  }
  dist[0] = 0;

  let rounds = 0;
  let changed = 1;
  while (changed == 1 && rounds < 40) {
    changed = 0;
    let u = 0;
    while (u < nodes) {
      let du = dist[u];
      if (du < (1 << 30)) {
        let k = 0;
        while (k < degree) {
          let idx = u * degree + k;
          let v = to[idx];
          let nd = du + weight[idx];
          if (nd < dist[v]) {
            dist[v] = nd;
            changed = 1;
          }
          k = k + 1;
        }
      }
      u = u + 1;
    }
    rounds = rounds + 1;
  }
  let sum = 0;
  let j = 0;
  while (j < nodes) {
    if (dist[j] < (1 << 30)) { sum = sum + dist[j]; }
    j = j + 1;
  }
  print(rounds);
  print(sum);
  return sum;
}
`

// progAnneal: a toy placement annealer — the vpr stand-in: random swaps,
// cost deltas over a grid, acceptance thresholds.
const progAnneal = `
fn cost(pos, net, i) {
  let a = pos[net[i * 2]];
  let b = pos[net[i * 2 + 1]];
  let d = a - b;
  if (d < 0) { d = -d; }
  return d;
}

fn main() {
  let cells = 400;
  let nets = 800;
  let pos = array(cells);
  let net = array(nets * 2);
  let i = 0;
  while (i < cells) { pos[i] = i; i = i + 1; }
  i = 0;
  while (i < nets * 2) { net[i] = rand() % cells; i = i + 1; }

  let total = 0;
  i = 0;
  while (i < nets) { total = total + cost(pos, net, i); i = i + 1; }

  let moves = 15000;
  let accepted = 0;
  let m = 0;
  while (m < moves) {
    let a = rand() % cells;
    let b = rand() % cells;
    let tmp = pos[a];
    pos[a] = pos[b];
    pos[b] = tmp;
    // Sample a few nets to estimate the delta (toy incremental cost).
    let delta = 0;
    let s = 0;
    while (s < 8) {
      delta = delta + cost(pos, net, (a * 8 + s) % nets) - cost(pos, net, (b * 8 + s) % nets);
      s = s + 1;
    }
    let threshold = 16 - ((m * 16) / moves);
    if (delta < threshold) {
      accepted = accepted + 1;
    } else {
      tmp = pos[a];
      pos[a] = pos[b];
      pos[b] = tmp;
    }
    m = m + 1;
  }
  print(accepted);
  return accepted;
}
`

// progSort: block-sorting with an explicit-stack quicksort plus insertion
// sort for small partitions — the bzip2 sorting phase stand-in: heavy
// comparisons, data-dependent branches, index-value loads.
const progSort = `
fn insertion(a, lo, hi) {
  let i = lo + 1;
  while (i <= hi) {
    let v = a[i];
    let j = i - 1;
    while (j >= lo && a[j] > v) {
      a[j + 1] = a[j];
      j = j - 1;
    }
    a[j + 1] = v;
    i = i + 1;
  }
  return 0;
}

fn main() {
  let n = 6000;
  let a = array(n);
  let i = 0;
  while (i < n) {
    a[i] = rand() % 65536;
    i = i + 1;
  }
  // Quicksort with an explicit stack of [lo, hi] partitions.
  let stack = array(128);
  let top = 0;
  stack[0] = 0;
  stack[1] = n - 1;
  top = 2;
  while (top > 0) {
    top = top - 2;
    let lo = stack[top];
    let hi = stack[top + 1];
    if (hi - lo < 24) {
      insertion(a, lo, hi);
    } else {
      let pivot = a[(lo + hi) / 2];
      let l = lo;
      let r = hi;
      while (l <= r) {
        while (a[l] < pivot) { l = l + 1; }
        while (a[r] > pivot) { r = r - 1; }
        if (l <= r) {
          let tmp = a[l];
          a[l] = a[r];
          a[r] = tmp;
          l = l + 1;
          r = r - 1;
        }
      }
      if (top < 124) {
        stack[top] = lo;     stack[top + 1] = r;     top = top + 2;
        stack[top] = l;      stack[top + 1] = hi;    top = top + 2;
      }
    }
  }
  // Verify sortedness.
  let bad = 0;
  i = 1;
  while (i < n) {
    if (a[i - 1] > a[i]) { bad = bad + 1; }
    i = i + 1;
  }
  print(bad);
  print(a[0]);
  print(a[n - 1]);
  return bad;
}
`

// progMatrix: blocked integer matrix multiply — the scientific-loop
// stand-in: perfectly regular strided access, deep loop nests, a single
// overwhelming hot region.
const progMatrix = `
fn main() {
  let n = 40;
  let a = array(n * n);
  let b = array(n * n);
  let c = array(n * n);
  let i = 0;
  while (i < n * n) {
    a[i] = rand() % 100;
    b[i] = rand() % 100;
    i = i + 1;
  }
  let r = 0;
  while (r < n) {
    let k = 0;
    while (k < n) {
      let ar = a[r * n + k];
      let j = 0;
      while (j < n) {
        c[r * n + j] = c[r * n + j] + ar * b[k * n + j];
        j = j + 1;
      }
      k = k + 1;
    }
    r = r + 1;
  }
  let checksum = 0;
  i = 0;
  while (i < n * n) {
    checksum = (checksum + c[i]) % 1000000007;
    i = i + 1;
  }
  print(checksum);
  return checksum;
}
`

// progStore: an object store exercising allocation, lookup, and nulls —
// the vortex stand-in: many zero-valued slots (sparse records), index
// indirection.
const progStore = `
fn main() {
  let objects = 3000;
  let fields = 8;
  let heap = array(objects * fields);
  let index = array(objects);
  let i = 0;
  while (i < objects) {
    index[i] = i * fields;
    // Sparse records: most fields stay zero.
    heap[i * fields] = i + 65536;
    if (rand() % 4 == 0) {
      heap[i * fields + 1 + rand() % (fields - 1)] = rand() % 100000;
    }
    i = i + 1;
  }
  // Query phase: random lookups touch every field (loads many zeros).
  let queries = 40000;
  let hits = 0;
  let q = 0;
  while (q < queries) {
    let obj = index[rand() % objects];
    let f = 0;
    while (f < fields) {
      if (heap[obj + f] != 0) { hits = hits + 1; }
      f = f + 1;
    }
    q = q + 1;
  }
  print(hits);
  return hits;
}
`
