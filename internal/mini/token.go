// Package mini implements a small imperative language — lexer, parser,
// bytecode compiler, and an instrumented virtual machine — used as the
// repository's "real program" substrate. The paper instruments native SPEC
// binaries (via ATOM/Pin-style tools or ProfileMe hardware) to produce the
// PC, load-value, and memory-address streams RAP summarizes; here, Mini
// programs play that role: the VM exposes basic-block and load hooks that
// emit exactly those streams, with a realistic text/heap/stack address
// layout. Unlike the statistical models in internal/workload, these traces
// come from actual program execution: loops, data-dependent branches, and
// pointer-valued data.
package mini

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// keywords
	FN
	LET
	IF
	ELSE
	WHILE
	RETURN
	TRUE
	FALSE

	// punctuation
	LPAREN
	RPAREN
	LBRACE
	RBRACE
	LBRACKET
	RBRACKET
	COMMA
	SEMI

	// operators
	ASSIGN
	PLUS
	MINUS
	STAR
	SLASH
	PERCENT
	AMP
	PIPE
	CARET
	SHL
	SHR
	ANDAND
	OROR
	BANG
	EQ
	NE
	LT
	GT
	LE
	GE
)

var kindNames = map[Kind]string{
	EOF: "eof", IDENT: "identifier", NUMBER: "number",
	FN: "fn", LET: "let", IF: "if", ELSE: "else", WHILE: "while",
	RETURN: "return", TRUE: "true", FALSE: "false",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMI: ";",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	ANDAND: "&&", OROR: "||", BANG: "!",
	EQ: "==", NE: "!=", LT: "<", GT: ">", LE: "<=", GE: ">=",
}

// String returns the kind's source spelling or name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Token is one lexeme with its position.
type Token struct {
	Kind Kind
	Text string
	Num  int64 // value for NUMBER
	Line int
}

var keywords = map[string]Kind{
	"fn": FN, "let": LET, "if": IF, "else": ELSE, "while": WHILE,
	"return": RETURN, "true": TRUE, "false": FALSE,
}

// Lexer tokenizes Mini source.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1}
}

// Next returns the next token, or an error for an illegal character or
// malformed number.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]

	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Line: line}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line}, nil

	case isDigit(c):
		base := int64(10)
		if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
			base = 16
			l.pos += 2
			start = l.pos
		}
		var v int64
		digits := 0
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || (base == 16 && isHex(l.src[l.pos]))) {
			v = v*base + int64(hexVal(l.src[l.pos]))
			digits++
			l.pos++
		}
		if digits == 0 {
			return Token{}, fmt.Errorf("mini: line %d: malformed number", line)
		}
		return Token{Kind: NUMBER, Text: l.src[start:l.pos], Num: v, Line: line}, nil
	}

	two := func(next byte, with, without Kind) (Token, error) {
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == next {
			l.pos++
			return Token{Kind: with, Text: l.src[start:l.pos], Line: line}, nil
		}
		return Token{Kind: without, Text: l.src[start:l.pos], Line: line}, nil
	}

	switch c {
	case '(':
		l.pos++
		return Token{Kind: LPAREN, Text: "(", Line: line}, nil
	case ')':
		l.pos++
		return Token{Kind: RPAREN, Text: ")", Line: line}, nil
	case '{':
		l.pos++
		return Token{Kind: LBRACE, Text: "{", Line: line}, nil
	case '}':
		l.pos++
		return Token{Kind: RBRACE, Text: "}", Line: line}, nil
	case '[':
		l.pos++
		return Token{Kind: LBRACKET, Text: "[", Line: line}, nil
	case ']':
		l.pos++
		return Token{Kind: RBRACKET, Text: "]", Line: line}, nil
	case ',':
		l.pos++
		return Token{Kind: COMMA, Text: ",", Line: line}, nil
	case ';':
		l.pos++
		return Token{Kind: SEMI, Text: ";", Line: line}, nil
	case '+':
		l.pos++
		return Token{Kind: PLUS, Text: "+", Line: line}, nil
	case '-':
		l.pos++
		return Token{Kind: MINUS, Text: "-", Line: line}, nil
	case '*':
		l.pos++
		return Token{Kind: STAR, Text: "*", Line: line}, nil
	case '/':
		l.pos++
		return Token{Kind: SLASH, Text: "/", Line: line}, nil
	case '%':
		l.pos++
		return Token{Kind: PERCENT, Text: "%", Line: line}, nil
	case '^':
		l.pos++
		return Token{Kind: CARET, Text: "^", Line: line}, nil
	case '&':
		return two('&', ANDAND, AMP)
	case '|':
		return two('|', OROR, PIPE)
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, BANG)
	case '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '<' {
			l.pos += 2
			return Token{Kind: SHL, Text: "<<", Line: line}, nil
		}
		return two('=', LE, LT)
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return Token{Kind: SHR, Text: ">>", Line: line}, nil
		}
		return two('=', GE, GT)
	}
	return Token{}, fmt.Errorf("mini: line %d: illegal character %q", line, c)
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch c := l.src[l.pos]; {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isAlpha(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}
func isDigit(c byte) bool { return '0' <= c && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
func isHex(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}
func hexVal(c byte) int {
	switch {
	case isDigit(c):
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
