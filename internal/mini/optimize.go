package mini

// Bytecode optimizer: classic local passes over compiled chunks —
// constant folding, algebraic simplification, multiply-by-power-of-two
// strength reduction, and jump threading — applied to a fixpoint. The
// optimizer preserves program results and observable output; it shortens
// the instruction (and therefore profile-event) stream, which is exactly
// the kind of transformation a profile-guided toolchain built on RAP
// would drive.

// Optimize returns an optimized copy of the program. The input is not
// modified.
func Optimize(p *Compiled) *Compiled {
	out := &Compiled{Main: p.Main}
	// First optimize each chunk's code, then reassign PC bases so block
	// PCs remain contiguous.
	pcBase := uint64(CodeBase)
	for _, c := range p.Chunks {
		oc := optimizeChunk(c)
		oc.PCBase = pcBase
		pcBase += uint64(len(oc.Code)) * instrBytes
		out.Chunks = append(out.Chunks, oc)
	}
	return out
}

func optimizeChunk(c *Chunk) *Chunk {
	code := append([]Instr(nil), c.Code...)
	starts := append([]bool(nil), c.BlockStart...)
	for pass := 0; pass < 10; pass++ {
		changed := false
		code, starts, changed = foldConstants(code, starts)
		if threadJumps(code) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return &Chunk{
		Name:       c.Name,
		NumParams:  c.NumParams,
		NumLocals:  c.NumLocals,
		Code:       code,
		BlockStart: starts,
	}
}

// binaryOp reports whether op pops two operands and pushes one pure
// result.
func binaryOp(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpGt, OpLe, OpGe:
		return true
	case OpDiv, OpMod:
		// Foldable only when the divisor constant is nonzero; checked at
		// the fold site.
		return true
	}
	return false
}

// foldConstants rewrites `const a; const b; binop` windows into a single
// constant, `const a; neg/not` into its result, and `const 2^k; mul`
// into `const k; shl`. Windows spanning a jump target are left alone.
// Removed instructions shift later code, so jump operands are remapped.
func foldConstants(code []Instr, starts []bool) ([]Instr, []bool, bool) {
	type rewrite struct {
		at   int // window start in the old code
		n    int // old window length
		with []Instr
	}
	var rewrites []rewrite
	for i := 0; i < len(code); i++ {
		// const a; const b; binop -> const (a op b)
		if i+2 < len(code) &&
			code[i].Op == OpConst && code[i+1].Op == OpConst && binaryOp(code[i+2].Op) &&
			!starts[i+1] && !starts[i+2] {
			a, b, op := code[i].Arg, code[i+1].Arg, code[i+2].Op
			if (op == OpDiv || op == OpMod) && b == 0 {
				continue // preserve the runtime error
			}
			v, err := applyBinary(op, a, b, "")
			if err != nil {
				continue
			}
			rewrites = append(rewrites, rewrite{at: i, n: 3, with: []Instr{{Op: OpConst, Arg: v}}})
			i += 2
			continue
		}
		// const a; neg|not -> const
		if i+1 < len(code) && code[i].Op == OpConst && !starts[i+1] {
			switch code[i+1].Op {
			case OpNeg:
				rewrites = append(rewrites, rewrite{at: i, n: 2, with: []Instr{{Op: OpConst, Arg: -code[i].Arg}}})
				i++
				continue
			case OpNot:
				v := int64(0)
				if code[i].Arg == 0 {
					v = 1
				}
				rewrites = append(rewrites, rewrite{at: i, n: 2, with: []Instr{{Op: OpConst, Arg: v}}})
				i++
				continue
			}
		}
		// const 2^k; mul -> const k; shl  (strength reduction; same
		// wrapping semantics for any operand sign)
		if i+1 < len(code) && code[i].Op == OpConst && code[i+1].Op == OpMul && !starts[i+1] {
			if c := code[i].Arg; c > 1 && c&(c-1) == 0 {
				k := int64(0)
				for v := c; v > 1; v >>= 1 {
					k++
				}
				rewrites = append(rewrites, rewrite{at: i, n: 2,
					with: []Instr{{Op: OpConst, Arg: k}, {Op: OpShl}}})
				i++
				continue
			}
		}
	}
	if len(rewrites) == 0 {
		return code, starts, false
	}

	// Apply the rewrites, building old->new index map for jump fixup.
	newIdx := make([]int, len(code)+1)
	var out []Instr
	var outStarts []bool
	r := 0
	for i := 0; i < len(code); {
		newIdx[i] = len(out)
		if r < len(rewrites) && rewrites[r].at == i {
			for k, ins := range rewrites[r].with {
				out = append(out, ins)
				outStarts = append(outStarts, k == 0 && starts[i])
			}
			// Interior old indices map to the rewrite start (no jump
			// targets land there by construction).
			for j := i; j < i+rewrites[r].n; j++ {
				newIdx[j] = newIdx[i]
			}
			i += rewrites[r].n
			r++
			continue
		}
		out = append(out, code[i])
		outStarts = append(outStarts, starts[i])
		i++
	}
	newIdx[len(code)] = len(out)
	for i := range out {
		switch out[i].Op {
		case OpJump, OpJumpIf:
			out[i].Arg = int64(newIdx[out[i].Arg])
		}
	}
	return out, outStarts, true
}

// threadJumps replaces jumps whose target is an unconditional jump with a
// jump to the final destination. Cycles are cut off by a hop budget.
func threadJumps(code []Instr) bool {
	changed := false
	for i := range code {
		if code[i].Op != OpJump && code[i].Op != OpJumpIf {
			continue
		}
		target := code[i].Arg
		for hops := 0; hops < 8; hops++ {
			ti := int(target)
			if ti < 0 || ti >= len(code) || code[ti].Op != OpJump || code[ti].Arg == target {
				break
			}
			target = code[ti].Arg
		}
		if target != code[i].Arg {
			code[i].Arg = target
			changed = true
		}
	}
	return changed
}
