package mini

import (
	"strings"
	"testing"
	"testing/quick"

	"rap/internal/stats"
)

// Robustness: the frontend must never panic — random inputs either parse
// or produce an error.

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", data, r)
			}
		}()
		_, _ = Compile(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	// Random sequences of valid tokens: syntactically adventurous but
	// lexically clean, probing the parser rather than the lexer.
	tokens := []string{
		"fn", "let", "if", "else", "while", "return", "true", "false",
		"main", "x", "y", "0", "42", "0xFF",
		"(", ")", "{", "}", "[", "]", ",", ";",
		"=", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"&&", "||", "!", "==", "!=", "<", ">", "<=", ">=",
	}
	rng := stats.NewSplitMix64(1234)
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on token soup %q: %v", src, r)
				}
			}()
			_, _ = Compile(src)
		}()
	}
}

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	// Structured random programs: straight-line arithmetic over a pool of
	// declared variables. Everything generated here is valid, so it must
	// compile, run, and be deterministic.
	rng := stats.NewSplitMix64(99)
	ops := []string{"+", "-", "*", "&", "|", "^"}
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		sb.WriteString("fn main() {\n")
		vars := 1 + rng.Intn(6)
		for v := 0; v < vars; v++ {
			fmt := func(i int) byte { return byte('a' + i) }
			sb.WriteString("  let ")
			sb.WriteByte(fmt(v))
			sb.WriteString(" = ")
			sb.WriteString(itoa(int64(rng.Intn(1000))))
			sb.WriteString(";\n")
		}
		stmts := 1 + rng.Intn(12)
		for s := 0; s < stmts; s++ {
			v := byte('a' + rng.Intn(vars))
			sb.WriteString("  ")
			sb.WriteByte(v)
			sb.WriteString(" = ")
			sb.WriteByte(byte('a' + rng.Intn(vars)))
			sb.WriteString(" ")
			sb.WriteString(ops[rng.Intn(len(ops))])
			sb.WriteString(" ")
			sb.WriteString(itoa(int64(rng.Intn(100) + 1)))
			sb.WriteString(";\n")
		}
		sb.WriteString("  return a;\n}\n")
		src := sb.String()

		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("generated program rejected: %v\n%s", err, src)
		}
		// Optimizer equivalence on generated programs, too.
		opt := Optimize(prog)
		vm1 := NewVM(prog, Config{Seed: 1})
		r1, err1 := vm1.Run()
		vm2 := NewVM(opt, Config{Seed: 1})
		r2, err2 := vm2.Run()
		if err1 != nil || err2 != nil || r1 != r2 {
			t.Fatalf("optimizer diverged on generated program (%v/%v, %d vs %d)\n%s",
				err1, err2, r1, r2, src)
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
