package mini

import "testing"

// Program-specific semantic checks beyond "it runs".

func TestSortProgramSorts(t *testing.T) {
	prog, err := LoadProgram("sort")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 99} {
		vm := NewVM(prog, Config{Seed: seed})
		bad, err := vm.Run()
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("seed %d: %d out-of-order pairs after sorting", seed, bad)
		}
		out := vm.Output()
		if len(out) != 3 || out[1] > out[2] {
			t.Fatalf("seed %d: output %v (want sorted first <= last)", seed, out)
		}
	}
}

func TestMatrixProgramDeterministicChecksum(t *testing.T) {
	prog, err := LoadProgram("matrix")
	if err != nil {
		t.Fatal(err)
	}
	vm1 := NewVM(prog, Config{Seed: 5})
	c1, err := vm1.Run()
	if err != nil {
		t.Fatal(err)
	}
	vm2 := NewVM(prog, Config{Seed: 5})
	c2, err := vm2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || c1 <= 0 {
		t.Fatalf("checksums %d vs %d", c1, c2)
	}
}

func TestGraphProgramConverges(t *testing.T) {
	prog, err := LoadProgram("graph")
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(prog, Config{Seed: 2})
	sum, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := vm.Output() // rounds, sum
	if len(out) != 2 {
		t.Fatalf("output = %v", out)
	}
	if rounds := out[0]; rounds < 2 || rounds > 40 {
		t.Fatalf("relaxation rounds = %d", rounds)
	}
	if sum <= 0 {
		t.Fatalf("distance sum = %d", sum)
	}
}

func TestMatrixIsLoopDominated(t *testing.T) {
	// The matrix kernel must concentrate execution: one block accounts
	// for a large share of the dynamic stream — the single-hot-region
	// profile shape scientific codes have.
	prog, err := LoadProgram("matrix")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]uint64{}
	var total uint64
	vm := NewVM(prog, Config{Seed: 1, Hooks: Hooks{OnBlock: func(pc uint64) {
		counts[pc]++
		total++
	}}})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	var best uint64
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if frac := float64(best) / float64(total); frac < 0.15 {
		t.Errorf("hottest block carries only %.3f of execution", frac)
	}
}
