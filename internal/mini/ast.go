package mini

// AST node types. The parser produces a Program; the compiler walks it.

// Program is a parsed Mini source file.
type Program struct {
	Funcs []*FuncDecl
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// Block is a braced statement list with its own lexical scope.
type Block struct {
	Stmts []Stmt
}

// LetStmt declares a new local variable.
type LetStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt assigns to an existing local.
type AssignStmt struct {
	Name  string
	Value Expr
	Line  int
}

// IndexAssignStmt stores into an array element.
type IndexAssignStmt struct {
	Target Expr // array expression
	Index  Expr
	Value  Expr
	Line   int
}

// IfStmt is a conditional with an optional else branch (possibly another
// IfStmt for else-if chains).
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
	Line int
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Line int
}

// ReturnStmt returns from the current function (value optional: nil means
// return 0).
type ReturnStmt struct {
	Value Expr
	Line  int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
}

func (*Block) stmt()           {}
func (*LetStmt) stmt()         {}
func (*AssignStmt) stmt()      {}
func (*IndexAssignStmt) stmt() {}
func (*IfStmt) stmt()          {}
func (*WhileStmt) stmt()       {}
func (*ReturnStmt) stmt()      {}
func (*ExprStmt) stmt()        {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// NumberLit is an integer literal.
type NumberLit struct {
	Value int64
	Line  int
}

// Ident references a local variable.
type Ident struct {
	Name string
	Line int
}

// Unary is -x or !x.
type Unary struct {
	Op   Kind
	X    Expr
	Line int
}

// Binary is a binary operation; && and || short-circuit.
type Binary struct {
	Op   Kind
	L, R Expr
	Line int
}

// Call invokes a function or builtin by name.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Index loads an array element.
type Index struct {
	Target Expr
	Idx    Expr
	Line   int
}

func (*NumberLit) expr() {}
func (*Ident) expr()     {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Call) expr()      {}
func (*Index) expr()     {}
