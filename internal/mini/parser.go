package mini

import "fmt"

// Parser builds an AST from Mini source with one token of lookahead.
type Parser struct {
	lex  *Lexer
	tok  Token
	prev Token
}

// Parse parses a complete Mini source file.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != EOF {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("mini: empty program")
	}
	return prog, nil
}

func (p *Parser) advance() error {
	p.prev = p.tok
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, fmt.Errorf("mini: line %d: expected %v, found %v %q",
			p.tok.Line, k, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *Parser) accept(k Kind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

func (p *Parser) funcDecl() (*FuncDecl, error) {
	if _, err := p.expect(FN); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var params []string
	if p.tok.Kind != RPAREN {
		for {
			param, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, param.Text)
			ok, err := p.accept(COMMA)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Line: name.Line}, nil
}

func (p *Parser) block() (*Block, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &Block{}
	for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	_, err := p.expect(RBRACE)
	return b, err
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.tok.Kind {
	case LET:
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &LetStmt{Name: name.Text, Init: init, Line: line}, nil

	case RETURN:
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		var value Expr
		if p.tok.Kind != SEMI {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			value = v
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: value, Line: line}, nil

	case IF:
		return p.ifStmt()

	case WHILE:
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil

	case LBRACE:
		return p.block()
	}

	// Assignment or expression statement.
	line := p.tok.Line
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if ok, err := p.accept(ASSIGN); err != nil {
		return nil, err
	} else if ok {
		value, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		switch lhs := x.(type) {
		case *Ident:
			return &AssignStmt{Name: lhs.Name, Value: value, Line: line}, nil
		case *Index:
			return &IndexAssignStmt{Target: lhs.Target, Index: lhs.Idx, Value: value, Line: line}, nil
		default:
			return nil, fmt.Errorf("mini: line %d: invalid assignment target", line)
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: line}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	line := p.tok.Line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &IfStmt{Cond: cond, Then: then, Line: line}
	if ok, err := p.accept(ELSE); err != nil {
		return nil, err
	} else if ok {
		if p.tok.Kind == IF {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

// Precedence climbing: each level parses the next-tighter level.

func (p *Parser) expr() (Expr, error) { return p.binary(0) }

// binOps lists binary operator tiers from loosest to tightest.
var binOps = [][]Kind{
	{OROR},
	{ANDAND},
	{EQ, NE},
	{LT, GT, LE, GE},
	{PIPE},
	{CARET},
	{AMP},
	{SHL, SHR},
	{PLUS, MINUS},
	{STAR, SLASH, PERCENT},
}

func (p *Parser) binary(level int) (Expr, error) {
	if level >= len(binOps) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binOps[level] {
			if p.tok.Kind == op {
				line := p.tok.Line
				if err := p.advance(); err != nil {
					return nil, err
				}
				right, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &Binary{Op: op, L: left, R: right, Line: line}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *Parser) unary() (Expr, error) {
	if p.tok.Kind == MINUS || p.tok.Kind == BANG {
		op, line := p.tok.Kind, p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x, Line: line}, nil
	}
	return p.postfix()
}

func (p *Parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.Kind {
		case LBRACKET:
			line := p.tok.Line
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			x = &Index{Target: x, Idx: idx, Line: line}
		case LPAREN:
			id, ok := x.(*Ident)
			if !ok {
				return nil, fmt.Errorf("mini: line %d: only named functions can be called", p.tok.Line)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			if p.tok.Kind != RPAREN {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					ok, err := p.accept(COMMA)
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x = &Call{Name: id.Name, Args: args, Line: id.Line}
		default:
			return x, nil
		}
	}
}

func (p *Parser) primary() (Expr, error) {
	switch p.tok.Kind {
	case NUMBER:
		t := p.tok
		return &NumberLit{Value: t.Num, Line: t.Line}, p.advance()
	case TRUE:
		t := p.tok
		return &NumberLit{Value: 1, Line: t.Line}, p.advance()
	case FALSE:
		t := p.tok
		return &NumberLit{Value: 0, Line: t.Line}, p.advance()
	case IDENT:
		t := p.tok
		return &Ident{Name: t.Text, Line: t.Line}, p.advance()
	case LPAREN:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RPAREN)
		return x, err
	}
	return nil, fmt.Errorf("mini: line %d: unexpected %v %q", p.tok.Line, p.tok.Kind, p.tok.Text)
}
