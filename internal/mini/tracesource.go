package mini

// Trace collection: run a program once with hooks attached and keep the
// profile streams, the way an ATOM/Pin-instrumented binary would write a
// trace file.

// LoadEvent is one executed load.
type LoadEvent struct {
	Addr  uint64
	Value uint64
}

// Trace holds the profile streams of one program run.
type Trace struct {
	Program  string
	BlockPCs []uint64
	Loads    []LoadEvent
	Steps    uint64
	Result   int64
}

// CollectTrace compiles and runs the named benchmark program, recording
// basic-block and load events.
func CollectTrace(name string, seed uint64) (*Trace, error) {
	prog, err := LoadProgram(name)
	if err != nil {
		return nil, err
	}
	return CollectProgramTrace(prog, name, seed)
}

// CollectProgramTrace runs an already-compiled program with tracing.
func CollectProgramTrace(prog *Compiled, name string, seed uint64) (*Trace, error) {
	tr := &Trace{Program: name}
	vm := NewVM(prog, Config{
		Seed: seed,
		Hooks: Hooks{
			OnBlock: func(pc uint64) { tr.BlockPCs = append(tr.BlockPCs, pc) },
			OnLoad:  func(addr, value uint64) { tr.Loads = append(tr.Loads, LoadEvent{addr, value}) },
		},
	})
	ret, err := vm.Run()
	if err != nil {
		return nil, err
	}
	tr.Steps = vm.Steps()
	tr.Result = ret
	return tr, nil
}

// LoadValues returns the values of all loads in the trace.
func (t *Trace) LoadValues() []uint64 {
	out := make([]uint64, len(t.Loads))
	for i, ld := range t.Loads {
		out[i] = ld.Value
	}
	return out
}

// ZeroLoadAddresses returns the addresses of zero-valued loads.
func (t *Trace) ZeroLoadAddresses() []uint64 {
	var out []uint64
	for _, ld := range t.Loads {
		if ld.Value == 0 {
			out = append(out, ld.Addr)
		}
	}
	return out
}
