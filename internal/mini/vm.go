package mini

import (
	"fmt"

	"rap/internal/stats"
)

// Memory layout of a running Mini program. The regions mirror a native
// process image so that profiled PCs and addresses look like the paper's:
// a low text segment, a heap in the 0x140000000 band, and a stack region
// at 0x11ff00000 (the band Figure 10's zero-loads cluster around).
const (
	CodeBase  = 0x00400000
	HeapBase  = 0x140000000
	StackBase = 0x11ff00000
)

// Hooks are the VM's instrumentation points, the moral equivalent of the
// paper's ProfileMe-style event capture. Nil hooks cost nothing.
type Hooks struct {
	// OnBlock fires at every basic-block entry with the block's PC.
	OnBlock func(pc uint64)
	// OnLoad fires for every memory read (array elements and locals) with
	// the address and the value read.
	OnLoad func(addr, value uint64)
	// OnStore fires for every memory write.
	OnStore func(addr, value uint64)
}

// Config parameterizes a VM run.
type Config struct {
	Seed     uint64
	MaxSteps uint64 // instruction budget; 0 means 200M
	MaxHeap  int    // heap words; 0 means 1<<24
	Hooks    Hooks
}

// VM executes a compiled Mini program.
type VM struct {
	prog *Compiled
	cfg  Config

	heap   []int64
	stack  []int64
	frames []frame
	rng    *stats.SplitMix64
	output []int64
	steps  uint64
}

type frame struct {
	chunk *Chunk
	ip    int
	base  int
}

// NewVM builds a VM for the program.
func NewVM(prog *Compiled, cfg Config) *VM {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	if cfg.MaxHeap == 0 {
		cfg.MaxHeap = 1 << 24
	}
	return &VM{prog: prog, cfg: cfg, rng: stats.NewSplitMix64(cfg.Seed)}
}

// Output returns the values printed by the program.
func (m *VM) Output() []int64 { return m.output }

// Steps returns the number of instructions executed.
func (m *VM) Steps() uint64 { return m.steps }

// Run executes main to completion and returns its result.
func (m *VM) Run() (int64, error) {
	main := m.prog.Chunks[m.prog.Main]
	m.stack = make([]int64, main.NumLocals, 1024)
	m.frames = append(m.frames[:0], frame{chunk: main})

	for {
		f := &m.frames[len(m.frames)-1]
		c := f.chunk
		if f.ip >= len(c.Code) {
			return 0, fmt.Errorf("mini: %s: fell off the end of the code", c.Name)
		}
		if m.steps >= m.cfg.MaxSteps {
			return 0, fmt.Errorf("mini: instruction budget of %d exhausted", m.cfg.MaxSteps)
		}
		m.steps++

		if c.BlockStart[f.ip] && m.cfg.Hooks.OnBlock != nil {
			m.cfg.Hooks.OnBlock(c.PC(f.ip))
		}

		ins := c.Code[f.ip]
		f.ip++
		switch ins.Op {
		case OpConst:
			m.push(ins.Arg)
		case OpLoadLocal:
			slot := f.base + int(ins.Arg)
			v := m.stack[slot]
			if m.cfg.Hooks.OnLoad != nil {
				m.cfg.Hooks.OnLoad(StackBase+uint64(slot)*8, uint64(v))
			}
			m.push(v)
		case OpStoreLocal:
			slot := f.base + int(ins.Arg)
			v := m.pop()
			if m.cfg.Hooks.OnStore != nil {
				m.cfg.Hooks.OnStore(StackBase+uint64(slot)*8, uint64(v))
			}
			m.stack[slot] = v
		case OpPop:
			m.pop()

		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpEq, OpNe, OpLt, OpGt, OpLe, OpGe:
			b := m.pop()
			a := m.pop()
			v, err := applyBinary(ins.Op, a, b, c.Name)
			if err != nil {
				return 0, err
			}
			m.push(v)
		case OpNeg:
			m.push(-m.pop())
		case OpNot:
			if m.pop() == 0 {
				m.push(1)
			} else {
				m.push(0)
			}

		case OpJump:
			f.ip = int(ins.Arg)
		case OpJumpIf:
			if m.pop() == 0 {
				f.ip = int(ins.Arg)
			}

		case OpCall:
			callee := m.prog.Chunks[ins.Arg]
			base := len(m.stack) - callee.NumParams
			for len(m.stack) < base+callee.NumLocals {
				m.stack = append(m.stack, 0)
			}
			m.frames = append(m.frames, frame{chunk: callee, base: base})
			if len(m.frames) > 10_000 {
				return 0, fmt.Errorf("mini: stack overflow calling %s", callee.Name)
			}
		case OpReturn:
			ret := m.pop()
			base := f.base
			m.frames = m.frames[:len(m.frames)-1]
			m.stack = m.stack[:base]
			if len(m.frames) == 0 {
				return ret, nil
			}
			m.push(ret)

		case OpNewArray:
			n := m.pop()
			if n < 0 || int(n) > m.cfg.MaxHeap-len(m.heap)-1 {
				return 0, fmt.Errorf("mini: %s: array(%d) exceeds heap budget", c.Name, n)
			}
			handle := int64(len(m.heap))
			m.heap = append(m.heap, n)
			m.heap = append(m.heap, make([]int64, n)...)
			m.push(handle)
		case OpALoad:
			idx := m.pop()
			h := m.pop()
			word, err := m.element(h, idx, c.Name)
			if err != nil {
				return 0, err
			}
			v := m.heap[word]
			if m.cfg.Hooks.OnLoad != nil {
				m.cfg.Hooks.OnLoad(HeapBase+uint64(word)*8, uint64(v))
			}
			m.push(v)
		case OpAStore:
			v := m.pop()
			idx := m.pop()
			h := m.pop()
			word, err := m.element(h, idx, c.Name)
			if err != nil {
				return 0, err
			}
			if m.cfg.Hooks.OnStore != nil {
				m.cfg.Hooks.OnStore(HeapBase+uint64(word)*8, uint64(v))
			}
			m.heap[word] = v
		case OpLen:
			h := m.pop()
			if h < 0 || h >= int64(len(m.heap)) {
				return 0, fmt.Errorf("mini: %s: len of invalid array handle %d", c.Name, h)
			}
			m.push(m.heap[h])
		case OpRand:
			m.push(int64(m.rng.Uint64() >> 1))
		case OpPrint:
			m.output = append(m.output, m.pop())

		default:
			return 0, fmt.Errorf("mini: %s: bad opcode %v", c.Name, ins.Op)
		}
	}
}

// element validates an array access and returns the heap word index.
func (m *VM) element(h, idx int64, fn string) (int64, error) {
	if h < 0 || h >= int64(len(m.heap)) {
		return 0, fmt.Errorf("mini: %s: invalid array handle %d", fn, h)
	}
	length := m.heap[h]
	if idx < 0 || idx >= length {
		return 0, fmt.Errorf("mini: %s: index %d out of range [0,%d)", fn, idx, length)
	}
	return h + 1 + idx, nil
}

func applyBinary(op Op, a, b int64, fn string) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("mini: %s: division by zero", fn)
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, fmt.Errorf("mini: %s: modulo by zero", fn)
		}
		return a % b, nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		return a << (uint64(b) & 63), nil
	case OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case OpEq:
		return boolInt(a == b), nil
	case OpNe:
		return boolInt(a != b), nil
	case OpLt:
		return boolInt(a < b), nil
	case OpGt:
		return boolInt(a > b), nil
	case OpLe:
		return boolInt(a <= b), nil
	default: // OpGe
		return boolInt(a >= b), nil
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *VM) push(v int64) { m.stack = append(m.stack, v) }

func (m *VM) pop() int64 {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}
