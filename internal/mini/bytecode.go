package mini

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode. The VM is stack-based; every instruction is an
// opcode plus one int64 operand (ignored where unused), a fixed 4-byte
// "instruction" for PC accounting purposes.
type Op uint8

// Opcodes.
const (
	OpConst Op = iota // push operand
	OpLoadLocal
	OpStoreLocal
	OpPop

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot

	OpEq
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe

	OpJump   // ip = operand
	OpJumpIf // pop; if zero, ip = operand
	OpCall   // operand = function index
	OpReturn

	OpNewArray // pop length; push handle
	OpALoad    // pop index, handle; push element (emits a load event)
	OpAStore   // pop value, index, handle
	OpLen      // pop handle; push length
	OpRand     // push next pseudorandom non-negative value
	OpPrint    // pop; append to VM output
)

var opNames = [...]string{
	OpConst: "const", OpLoadLocal: "loadl", OpStoreLocal: "storel", OpPop: "pop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpGt: "gt", OpLe: "le", OpGe: "ge",
	OpJump: "jump", OpJumpIf: "jumpifz", OpCall: "call", OpReturn: "ret",
	OpNewArray: "newarray", OpALoad: "aload", OpAStore: "astore",
	OpLen: "len", OpRand: "rand", OpPrint: "print",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	Op  Op
	Arg int64
}

// instrBytes is the architectural size charged per instruction when
// mapping instruction indices to program counters.
const instrBytes = 4

// Chunk is one compiled function.
type Chunk struct {
	Name       string
	NumParams  int
	NumLocals  int // including params
	Code       []Instr
	BlockStart []bool // Code[i] begins a basic block
	PCBase     uint64 // program counter of Code[0]
}

// PC returns the program counter of instruction index ip.
func (c *Chunk) PC(ip int) uint64 { return c.PCBase + uint64(ip)*instrBytes }

// Compiled is a fully compiled program.
type Compiled struct {
	Chunks []*Chunk
	Main   int // index of the entry function
}

// Disassemble renders the program's bytecode for debugging and tests.
func (p *Compiled) Disassemble() string {
	var sb strings.Builder
	for _, c := range p.Chunks {
		fmt.Fprintf(&sb, "fn %s (params=%d locals=%d pc=%x)\n",
			c.Name, c.NumParams, c.NumLocals, c.PCBase)
		for i, ins := range c.Code {
			mark := " "
			if c.BlockStart[i] {
				mark = "*"
			}
			fmt.Fprintf(&sb, "%s %4d  %-9s %d\n", mark, i, ins.Op, ins.Arg)
		}
	}
	return sb.String()
}
