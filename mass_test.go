package rap_test

// Counter-mass conservation, driven through the engine-conformance table:
// every unit of weight an engine admits must remain countable — the
// full-universe estimate accounts for all credited mass, and Stats.N plus
// the unadmitted ledger always reconstructs exactly what was offered — no
// matter how the counters underneath are promoted between width classes,
// compacted by merge batches, deep-copied by epoch publication, or
// round-tripped through snapshots. A lost or double-counted unit anywhere
// in the pooled-counter machinery shows up here as a conservation leak.

import (
	"testing"

	"rap"
	"rap/internal/stats"
)

const confUniverseMax = 1<<16 - 1

// offeredStream feeds eng a promotion-heavy mixed workload and returns the
// total weight offered: a skewed weight-1 stream, mid-size weighted
// updates crossing the 255 and 65535 counter boundaries, and a few jump
// updates that skip counter classes outright.
func offeredStream(eng rap.Profiler, seed uint64) uint64 {
	var offered uint64
	points := confStream(seed, 20_000)
	eng.AddBatch(points[:10_000])
	for _, p := range points[10_000:] {
		eng.Add(p)
	}
	offered += 20_000
	rng := stats.NewSplitMix64(seed ^ 0xabcdef)
	for i := 0; i < 300; i++ {
		w := rng.Uint64n(1000) + 1
		eng.AddN(rng.Uint64n(1<<16), w)
		offered += w
	}
	for i := 0; i < 4; i++ {
		// Jump updates: a single weight that promotes an 8-bit counter
		// straight past the 16-bit class.
		eng.AddN(rng.Uint64n(1<<16), 1<<20)
		offered += 1 << 20
	}
	return offered
}

// expectedCounted returns the full-universe estimate an engine must report
// after offered weight: the offered mass itself, except for the sampling
// engine whose estimates are scaled-up sampled counts (k=3 in the
// conformance table), where the deterministic sampler admits exactly
// floor(offered/k) events whatever the call pattern was.
func expectedCounted(p rap.Profiler, offered uint64) uint64 {
	if _, ok := p.(*rap.SampledTree); ok {
		return (offered / 3) * 3
	}
	return offered
}

func TestConformanceMassConservation(t *testing.T) {
	for _, spec := range engineTable() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			eng := spec.make(t)
			offered := offeredStream(eng, 4242)

			check := func(stage string, r rap.Reader, p rap.Profiler, want uint64) {
				t.Helper()
				st := r.Stats()
				if st.N+st.UnadmittedN != want {
					t.Fatalf("%s: N %d + unadmitted %d != offered %d",
						stage, st.N, st.UnadmittedN, want)
				}
				if got, expect := r.Estimate(0, confUniverseMax), expectedCounted(p, want); got != expect {
					t.Fatalf("%s: full-universe estimate %d, want %d", stage, got, expect)
				}
			}

			check("after ingest", eng, eng, offered)

			// Merge-batch compaction (pool rebuild included) conserves mass.
			eng.Finalize()
			check("after finalize", eng, eng, offered)

			// Epoch publication deep-copies the counter pools: the pinned
			// reader's mass stays frozen while the writer keeps promoting.
			if ep, ok := rap.ReaderOf(eng); ok {
				more := offeredStream(eng, 777)
				check("pinned epoch", ep, eng, offered)
				check("writer after epoch", eng, eng, offered+more)
				ep.Release()
				offered += more
			}

			// Snapshot round-trip conserves mass, and the restored engine
			// keeps conserving as ingest continues.
			if spec.snapshot != nil {
				restored := spec.restore(t, spec.snapshot(t, eng))
				check("restored", restored, restored, offered)
				more := offeredStream(restored, 31337)
				check("restored after more ingest", restored, restored, offered+more)
				restored.Finalize()
				check("restored after finalize", restored, restored, offered+more)
			}
		})
	}
}
