// Edgeprofile: the paper's Section 6 multi-dimensional extension — profile
// branch edges (source PC, target PC) of a real Mini program with a 2-D
// RAP tree and recover the hot control-flow transitions, the input an
// edge-profile-guided optimizer (superblock formation, trace scheduling)
// would consume.
package main

import (
	"flag"
	"fmt"
	"log"

	"rap/internal/mini"
	"rap/internal/multidim"
)

func main() {
	program := flag.String("program", "compress", "mini benchmark to profile")
	seed := flag.Uint64("seed", 3, "program input seed")
	flag.Parse()

	prog, err := mini.LoadProgram(*program)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := multidim.New2D(multidim.Config2D{BitsPerDim: 32, Epsilon: 0.01})
	if err != nil {
		log.Fatal(err)
	}

	// Each consecutive pair of basic blocks is one control-flow edge.
	var prev uint64
	havePrev := false
	vm := mini.NewVM(prog, mini.Config{
		Seed: *seed,
		Hooks: mini.Hooks{OnBlock: func(pc uint64) {
			if havePrev {
				tree.Add(prev, pc)
			}
			prev, havePrev = pc, true
		}},
	})
	if _, err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	st := tree.Finalize()

	fmt.Printf("%s: %d edges profiled with %d counters (%d bytes)\n",
		*program, tree.N(), st.Nodes, st.MemoryBytes)
	fmt.Println("\nhot control-flow transitions (>= 5% of all edges):")
	for _, c := range tree.HotCells(0.05) {
		kind := "cross"
		if c.XLo == c.YLo && c.XHi == c.YHi {
			kind = "loop " // self-transitions: loop back-edge neighborhoods
		}
		fmt.Printf("  %s (%x-%x) -> (%x-%x)  %5.1f%%  from %s to %s\n",
			kind, c.XLo, c.XHi, c.YLo, c.YHi, 100*c.Frac,
			funcAt(prog, c.XLo), funcAt(prog, c.YLo))
	}

	// A rectangle query: how much control flow stays inside the hottest
	// function? (intraprocedural share)
	if len(prog.Chunks) > 0 {
		hot := hottestChunk(prog, tree)
		lo, hi := hot.PC(0), hot.PC(len(hot.Code)-1)
		within := tree.Estimate(lo, hi, lo, hi)
		fmt.Printf("\ncontrol flow staying inside %s: %.1f%%\n",
			hot.Name, 100*float64(within)/float64(tree.N()))
	}
}

func funcAt(p *mini.Compiled, pc uint64) string {
	for _, c := range p.Chunks {
		if pc >= c.PC(0) && pc <= c.PC(len(c.Code)-1) {
			return c.Name
		}
	}
	return "?"
}

func hottestChunk(p *mini.Compiled, t *multidim.Tree2D) *mini.Chunk {
	best := p.Chunks[0]
	var bestW uint64
	for _, c := range p.Chunks {
		lo, hi := c.PC(0), c.PC(len(c.Code)-1)
		if w := t.Estimate(lo, hi, 0, ^uint64(0)>>32); w > bestW {
			best, bestW = c, w
		}
	}
	return best
}
