// Codeprofile: find the hot code regions of a real program. A Mini
// benchmark runs under the instrumented VM; its basic-block PC stream
// feeds a RAP tree, which zooms in on the loops where the time goes —
// the paper's "hot code regions with 8 KB of memory" use case.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/mini"
)

func main() {
	program := flag.String("program", "compress", "mini benchmark to profile")
	seed := flag.Uint64("seed", 7, "program input seed")
	eps := flag.Float64("eps", 0.10, "RAP error bound")
	flag.Parse()

	prog, err := mini.LoadProgram(*program)
	if err != nil {
		log.Fatal(err)
	}

	// Profile online: the block hook feeds the tree directly, the way
	// the hardware engine taps a retirement stream — no trace is stored.
	cfg := core.DefaultConfig()
	cfg.UniverseBits = 32 // PCs live in a 32-bit text segment
	cfg.Epsilon = *eps
	tree := core.MustNew(cfg)

	vm := mini.NewVM(prog, mini.Config{
		Seed:  *seed,
		Hooks: mini.Hooks{OnBlock: tree.Add},
	})
	if _, err := vm.Run(); err != nil {
		log.Fatal(err)
	}

	st := tree.Finalize()
	fmt.Printf("%s: %d blocks executed, profiled with %d counters (%d bytes)\n",
		*program, st.N, st.Nodes, st.MemoryBytes)

	// Name the functions behind the hot ranges using the compiler's
	// chunk layout — the "which loop is hot" answer.
	fmt.Println("\nhot code ranges (>= 10% of execution):")
	for _, h := range tree.HotRanges(0.10) {
		fmt.Printf("  [%8x, %8x]  %5.1f%%  in %s\n", h.Lo, h.Hi, 100*h.Frac, functionsCovering(prog, h))
	}

	fmt.Println("\nhot-range tree:")
	if err := analysis.RenderHotTree(os.Stdout, tree, 0.10); err != nil {
		log.Fatal(err)
	}
}

// functionsCovering lists the compiled functions overlapping a hot range.
func functionsCovering(prog *mini.Compiled, h core.HotRange) string {
	names := ""
	for _, c := range prog.Chunks {
		start, end := c.PC(0), c.PC(len(c.Code)-1)
		if start > h.Hi || end < h.Lo {
			continue
		}
		if names != "" {
			names += ","
		}
		names += c.Name
	}
	if names == "" {
		return "?"
	}
	return names
}
