// Cachemiss: the paper's Figure 9 use case — compare the value locality
// of all loads against loads that miss the data caches. The load stream
// of a modeled benchmark plays through a DL1/DL2 hierarchy; RAP trees
// over the three value streams answer "do cache misses carry more
// predictable values?" (the paper: yes).
package main

import (
	"flag"
	"fmt"
	"log"

	"rap/internal/analysis"
	"rap/internal/cachesim"
	"rap/internal/core"
	"rap/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "modeled SPEC benchmark")
	events := flag.Uint64("n", 2_000_000, "loads to simulate")
	seed := flag.Uint64("seed", 5, "workload seed")
	flag.Parse()

	b, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	loads := b.Loads(*seed, *events)
	caches := cachesim.NewHierarchy()

	allTree := core.MustNew(core.DefaultConfig())
	dl1Tree := core.MustNew(core.DefaultConfig())
	dl2Tree := core.MustNew(core.DefaultConfig())

	for i := uint64(0); i < *events; i++ {
		ld := loads.Next()
		allTree.Add(ld.Value)
		l1Miss, l2Miss := caches.Access(ld.Addr)
		if l1Miss {
			dl1Tree.Add(ld.Value)
		}
		if l2Miss {
			dl2Tree.Add(ld.Value)
		}
	}
	allTree.Finalize()
	dl1Tree.Finalize()
	dl2Tree.Finalize()

	_, m1, r1 := caches.L1.Stats()
	_, m2, r2 := caches.L2.Stats()
	fmt.Printf("%s: %d loads; DL1 misses %d (%.1f%%), DL2 misses %d (%.1f%% of its accesses)\n",
		*bench, *events, m1, 100*r1, m2, 100*r2)

	curves := map[string][]analysis.CoveragePoint{
		"all_loads":  analysis.CoverageCurve(allTree, 0.10),
		"dl1_misses": analysis.CoverageCurve(dl1Tree, 0.10),
		"dl2_misses": analysis.CoverageCurve(dl2Tree, 0.10),
	}
	fmt.Println("\ncoverage by hot value ranges of width <= 2^k (Figure 9):")
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "k", "all_loads", "dl1_misses", "dl2_misses")
	for k := 0; k <= 64; k += 8 {
		fmt.Printf("%-6d %-12.1f %-12.1f %-12.1f\n", k,
			100*analysis.CoverageAt(curves["all_loads"], k),
			100*analysis.CoverageAt(curves["dl1_misses"], k),
			100*analysis.CoverageAt(curves["dl2_misses"], k))
	}

	a, d := analysis.CoverageAt(curves["all_loads"], 16), analysis.CoverageAt(curves["dl1_misses"], 16)
	fmt.Printf("\nat width 2^16: misses %.1f%% vs all loads %.1f%% — ", 100*d, 100*a)
	if d > a {
		fmt.Println("miss values ARE more range-predictable (the paper's finding)")
	} else {
		fmt.Println("no extra miss-value locality on this workload")
	}
}
