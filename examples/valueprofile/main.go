// Valueprofile: reproduce the paper's Figure 5 use case — summarize every
// load value a program produces into nested hot ranges, the summary that
// guides value-range specialization, value prediction, and bus encoding.
//
// Analysis runs against a pinned epoch rather than the live profiler:
// every table below describes one consistent cut of the stream, the way
// a dashboard or offline pass should read a profile that is still being
// fed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rap"
	"rap/internal/analysis"
	"rap/internal/trace"
	"rap/internal/workload"
)

func main() {
	bench := flag.String("bench", "gzip", "modeled SPEC benchmark (gcc gzip mcf parser vortex vpr bzip2)")
	events := flag.Uint64("n", 2_000_000, "load values to profile")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	b, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	// 64-bit values, eps = 1%; the ingest loop only needs the Writer
	// facet of the profiler.
	p, err := rap.New(rap.WithEpsilon(0.01))
	if err != nil {
		log.Fatal(err)
	}
	var w rap.Writer = p
	src := trace.Limit(b.Values(*seed, *events), *events)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		w.AddN(e.Value, e.Weight)
	}
	st := w.Finalize()

	// Pin one epoch and run every analysis against it: the hot tree, the
	// coverage curve, and the nested-range accounting all describe the
	// same cut.
	ep, ok := rap.ReaderOf(p)
	if !ok {
		log.Fatal("engine has no consistent read path")
	}
	defer ep.Release()

	fmt.Printf("%s: %d load values summarized in %d bytes\n", *bench, st.N, st.MemoryBytes)
	fmt.Println("\nhot value ranges (>= 10% of all loads), Figure 5 style:")
	if err := analysis.RenderHotTree(os.Stdout, ep.Tree(), 0.10); err != nil {
		log.Fatal(err)
	}

	// The hierarchical summary answers width questions directly: how many
	// bits suffice to cover most loads? (the encoding decision).
	fmt.Println("\ncumulative coverage by hot ranges of width <= 2^k:")
	curve := analysis.CoverageCurve(ep.Tree(), 0.10)
	for k := 0; k <= 64; k += 8 {
		fmt.Printf("  width 2^%-3d %5.1f%%\n", k, 100*analysis.CoverageAt(curve, k))
	}

	// Nested range accounting exactly as the paper reads Figure 5: the
	// share of [0, fe] including and excluding its hot sub-range.
	inner := ep.Estimate(0, 0xe)
	outer := ep.Estimate(0, 0xfe)
	fmt.Printf("\n[0,e] holds %.1f%%; [0,fe] holds %.1f%% (%.1f%% outside [0,e])\n",
		frac(inner, st.N), frac(outer, st.N), frac(outer-inner, st.N))
}

func frac(x, n uint64) float64 { return 100 * float64(x) / float64(n) }
