// Quickstart: build a RAP profiler over a skewed stream, ask for the hot
// ranges, and check the answers against the guarantees — the five-minute
// tour of the library, using only the public rap package.
//
// The tour uses the split API surface: ingest code holds a rap.Writer,
// query code holds a pinned rap.Epoch (a consistent lock-free snapshot
// obtained through rap.ReaderOf), and nothing ever sees both sides at
// once.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"sync"

	"rap"
)

func main() {
	// A concurrent profiler with the paper's defaults: 64-bit universe,
	// branching factor 4, eps = 1% error bound, batched merges doubling
	// in period. WithReadSnapshots decouples queries from ingest: the
	// writer publishes immutable epochs and readers pin them without
	// taking any lock.
	p, err := rap.New(
		rap.WithUniverse(0), // full 64-bit universe
		rap.WithEpsilon(0.01),
		rap.WithBranching(4),
		rap.WithConcurrent(),
		rap.WithReadSnapshots(0), // 0 = default publish cadence
	)
	if err != nil {
		log.Fatal(err)
	}

	// Feed it two million events from four goroutines: a hot point, a
	// hot narrow band, and a uniform background — without telling RAP
	// which is which. The ingest side only needs the Writer facet.
	const n = 2_000_000
	const workers = 4
	var w rap.Writer = p
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(42, uint64(g)))
			for i := 0; i < n/workers; i++ {
				switch {
				case i%5 == 0: // 20%: one hot value
					w.Add(0xCAFEBABE)
				case i%5 == 1 || i%5 == 2: // 40%: a hot 4KB band
					w.Add(0x7F000000 + rng.Uint64N(4096))
				default: // 40%: uniform noise over the whole 64-bit universe
					w.Add(rng.Uint64())
				}
			}
		}(g)
	}
	wg.Wait()

	st := p.Finalize()
	fmt.Printf("profiled %d events with %d live counters (%d bytes, max %d)\n",
		st.N, st.Nodes, st.MemoryBytes, st.MaxNodes)

	// The query side pins one epoch and asks it everything: the answers
	// are mutually consistent (one cut of the stream) and served without
	// locks, even while writers are running.
	ep, ok := rap.ReaderOf(p)
	if !ok {
		log.Fatal("engine has no consistent read path")
	}
	defer ep.Release()
	fmt.Printf("reading epoch %d, cut at %d events\n", ep.Seq(), ep.CutN())

	// Hot ranges at the 10% threshold: RAP finds the hot point and the
	// hot band at full precision, and summarizes the noise coarsely.
	fmt.Println("\nranges holding >= 10% of the stream:")
	for _, h := range ep.HotRanges(0.10) {
		fmt.Printf("  [%x, %x]  %5.1f%%\n", h.Lo, h.Hi, 100*h.Frac)
	}

	// Range queries come with guarantees: the estimate is a lower bound
	// and the upper bound brackets the truth.
	lo, hi := ep.EstimateBounds(0x7F000000, 0x7F000FFF)
	fmt.Printf("\nband estimate: between %d and %d events (true: ~%d)\n", lo, hi, 2*n/5)

	// Snapshots round-trip, so profiles can be shipped and post-processed.
	blob, err := w.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	var restored rap.Tree
	if err := restored.UnmarshalBinary(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: %d bytes; restored tree sees %d events\n", len(blob), restored.N())
	fmt.Printf("split threshold is eps*n/H = %.0f events\n", restored.SplitThreshold())

	fmt.Println("\nfull tree dump:")
	if err := restored.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
