// Quickstart: build a RAP profiler over a skewed stream, ask for the hot
// ranges, and check the answers against the guarantees — the five-minute
// tour of the library, using only the public rap package.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"rap"
)

func main() {
	// A profiler with the paper's defaults: 64-bit universe, branching
	// factor 4, eps = 1% error bound, batched merges doubling in period.
	// Functional options select the operating point; with no engine
	// option New returns the plain single-goroutine tree.
	p, err := rap.New(
		rap.WithUniverse(0), // full 64-bit universe
		rap.WithEpsilon(0.01),
		rap.WithBranching(4),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Feed it two million events: a hot point, a hot narrow band, and a
	// uniform background — without telling RAP which is which.
	rng := rand.New(rand.NewPCG(42, 0))
	const n = 2_000_000
	for i := 0; i < n; i++ {
		switch {
		case i%5 == 0: // 20%: one hot value
			p.Add(0xCAFEBABE)
		case i%5 == 1 || i%5 == 2: // 40%: a hot 4KB band
			p.Add(0x7F000000 + rng.Uint64N(4096))
		default: // 40%: uniform noise over the whole 64-bit universe
			p.Add(rng.Uint64())
		}
	}

	st := p.Finalize()
	fmt.Printf("profiled %d events with %d live counters (%d bytes, max %d)\n",
		st.N, st.Nodes, st.MemoryBytes, st.MaxNodes)

	// Hot ranges at the 10% threshold: RAP finds the hot point and the
	// hot band at full precision, and summarizes the noise coarsely.
	fmt.Println("\nranges holding >= 10% of the stream:")
	for _, h := range p.HotRanges(0.10) {
		fmt.Printf("  [%x, %x]  %5.1f%%\n", h.Lo, h.Hi, 100*h.Frac)
	}

	// Range queries come with guarantees: the estimate is a lower bound
	// and the upper bound brackets the truth.
	lo, hi := p.EstimateBounds(0x7F000000, 0x7F000FFF)
	fmt.Printf("\nband estimate: between %d and %d events (true: ~%d)\n", lo, hi, 2*n/5)

	// The default engine is the full-surface Tree; beyond the Profiler
	// interface it offers snapshots and structure dumps.
	tree := p.(*rap.Tree)
	fmt.Printf("split threshold is eps*n/H = %.0f events\n", tree.SplitThreshold())

	// Snapshots round-trip, so profiles can be shipped and post-processed.
	blob, err := tree.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	var restored rap.Tree
	if err := restored.UnmarshalBinary(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: %d bytes; restored tree sees %d events\n", len(blob), restored.N())

	fmt.Println("\nfull tree dump:")
	if err := restored.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
