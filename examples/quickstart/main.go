// Quickstart: build a RAP tree over a skewed stream, ask for the hot
// ranges, and check the answers against the guarantees — the five-minute
// tour of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"rap/internal/core"
	"rap/internal/stats"
)

func main() {
	// A RAP tree with the paper's defaults: 64-bit universe, branching
	// factor 4, eps = 1% error bound, batched merges doubling in period.
	cfg := core.DefaultConfig()
	tree, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Feed it two million events: a hot point, a hot narrow band, and a
	// uniform background — without telling RAP which is which.
	rng := stats.NewSplitMix64(42)
	const n = 2_000_000
	for i := 0; i < n; i++ {
		switch {
		case i%5 == 0: // 20%: one hot value
			tree.Add(0xCAFEBABE)
		case i%5 == 1 || i%5 == 2: // 40%: a hot 4KB band
			tree.Add(0x7F000000 + rng.Uint64n(4096))
		default: // 40%: uniform noise over the whole 64-bit universe
			tree.Add(rng.Uint64())
		}
	}

	st := tree.Finalize()
	fmt.Printf("profiled %d events with %d live counters (%d bytes, max %d)\n",
		st.N, st.Nodes, st.MemoryBytes, st.MaxNodes)
	fmt.Printf("split threshold is eps*n/H = %.0f events\n\n", tree.SplitThreshold())

	// Hot ranges at the 10% threshold: RAP finds the hot point and the
	// hot band at full precision, and summarizes the noise coarsely.
	fmt.Println("ranges holding >= 10% of the stream:")
	for _, h := range tree.HotRanges(0.10) {
		fmt.Printf("  [%x, %x]  %5.1f%%\n", h.Lo, h.Hi, 100*h.Frac)
	}

	// Range queries come with guarantees: the estimate is a lower bound
	// and the upper bound brackets the truth.
	lo, hi := tree.EstimateBounds(0x7F000000, 0x7F000FFF)
	fmt.Printf("\nband estimate: between %d and %d events (true: ~%d)\n", lo, hi, 2*n/5)

	// Snapshots round-trip, so profiles can be shipped and post-processed.
	blob, err := tree.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	var restored core.Tree
	if err := restored.UnmarshalBinary(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot: %d bytes; restored tree sees %d events\n", len(blob), restored.N())

	fmt.Println("\nfull tree dump:")
	if err := restored.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
