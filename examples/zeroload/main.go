// Zeroload: the paper's Figure 10 use case — find which regions of data
// memory keep producing zero-valued loads, the places a bus-compression
// scheme or a data-structure audit should target. Runs the Mini "store"
// program (sparse object records, the vortex stand-in) and profiles the
// addresses of its zero loads.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rap/internal/analysis"
	"rap/internal/core"
	"rap/internal/mini"
)

func main() {
	program := flag.String("program", "store", "mini benchmark to run")
	seed := flag.Uint64("seed", 11, "program input seed")
	flag.Parse()

	prog, err := mini.LoadProgram(*program)
	if err != nil {
		log.Fatal(err)
	}

	// Two trees side by side: all load addresses, and addresses of loads
	// that returned zero. Their ratio per range is the "chance a load
	// from this region is a zero" statistic the paper quotes (38% for
	// gcc's hot band).
	all := core.MustNew(core.DefaultConfig())
	zero := core.MustNew(core.DefaultConfig())

	vm := mini.NewVM(prog, mini.Config{
		Seed: *seed,
		Hooks: mini.Hooks{OnLoad: func(addr, value uint64) {
			all.Add(addr)
			if value == 0 {
				zero.Add(addr)
			}
		}},
	})
	if _, err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	all.Finalize()
	st := zero.Finalize()

	fmt.Printf("%s: %d loads, %d returned zero (%.1f%%)\n",
		*program, all.N(), st.N, 100*float64(st.N)/float64(all.N()))

	fmt.Println("\nzero-load memory ranges (>= 10% of zero loads):")
	for _, h := range zero.HotRanges(0.10) {
		loadsHere := all.Estimate(h.Lo, h.Hi)
		chance := 0.0
		if loadsHere > 0 {
			chance = 100 * float64(zero.Estimate(h.Lo, h.Hi)) / float64(loadsHere)
		}
		region := "heap"
		if h.Lo >= mini.StackBase && h.Lo < mini.HeapBase {
			region = "stack"
		}
		fmt.Printf("  [%x, %x]  %5.1f%% of zero-loads  (%s; a load here is zero %.0f%% of the time)\n",
			h.Lo, h.Hi, 100*h.Frac, region, chance)
	}

	fmt.Println("\nzero-load hot-range tree:")
	if err := analysis.RenderHotTree(os.Stdout, zero, 0.10); err != nil {
		log.Fatal(err)
	}
}
