package rap

import (
	"errors"
	"fmt"
	"math/bits"
)

// Option is one functional configuration knob for New/NewConfig.
type Option func(*builder)

// builder accumulates options before validation.
type builder struct {
	cfg           Config
	shards        int
	concurrent    bool
	sampleK       uint64
	audit         *Auditor
	admission     *Admission
	readSnapshots bool
	snapshotEvery uint64
	errs          []error
}

// WithUniverse sets the value universe to [0, size), rounded up to the
// next power of two; size 0 selects the full 64-bit universe. This is the
// domain the paper's H = log_b(universe) height derives from.
func WithUniverse(size uint64) Option {
	return func(b *builder) {
		if size == 0 {
			b.cfg.UniverseBits = 64
			return
		}
		b.cfg.UniverseBits = bits.Len64(size - 1)
		if b.cfg.UniverseBits == 0 {
			b.cfg.UniverseBits = 1 // size 1: smallest valid universe
		}
	}
}

// WithUniverseBits sets the universe to [0, 2^w) directly.
func WithUniverseBits(w int) Option {
	return func(b *builder) { b.cfg.UniverseBits = w }
}

// WithEpsilon sets the paper's ε: estimates undercount any tracked range
// by at most ε·n. Must be in (0, 1).
func WithEpsilon(eps float64) Option {
	return func(b *builder) { b.cfg.Epsilon = eps }
}

// WithBranching sets the paper's b, the fan-out of a split. Must be a
// power of two in [2, 256].
func WithBranching(branch int) Option {
	return func(b *builder) { b.cfg.Branch = branch }
}

// WithMergeRatio sets the paper's q, the geometric growth factor of the
// interval between batched merge passes. Must be > 1.
func WithMergeRatio(q float64) Option {
	return func(b *builder) { b.cfg.MergeRatio = q }
}

// WithFirstMerge sets how many events arrive before the first merge
// batch.
func WithFirstMerge(n uint64) Option {
	return func(b *builder) { b.cfg.FirstMerge = n }
}

// WithMergeEvery replaces the geometric merge schedule with a fixed
// period (the paper's "continuous merging" regime).
func WithMergeEvery(n uint64) Option {
	return func(b *builder) { b.cfg.MergeEvery = n }
}

// WithSharding selects the sharded engine with k shards (k <= 0 selects
// GOMAXPROCS). Shards ingest in parallel without a shared lock; queries
// merge the shard trees and keep the ε·n bound over the combined stream.
func WithSharding(k int) Option {
	return func(b *builder) {
		if k <= 0 {
			b.errs = append(b.errs, fmt.Errorf("rap: WithSharding(%d): shard count must be >= 1", k))
			return
		}
		b.shards = k
	}
}

// WithConcurrent selects the mutex-wrapped engine, safe for concurrent
// use from any number of goroutines.
func WithConcurrent() Option {
	return func(b *builder) { b.concurrent = true }
}

// WithSampling applies deterministic 1-in-k sampling ahead of the tree;
// estimates are scaled back up. k must be >= 1 (1 disables sampling).
func WithSampling(k uint64) Option {
	return func(b *builder) {
		if k == 0 {
			b.errs = append(b.errs, errors.New("rap: WithSampling(0): sample period must be >= 1"))
			return
		}
		b.sampleK = k
	}
}

// WithReadSnapshots enables the epoch-published read path on the
// concurrent and sharded engines: the writer periodically publishes an
// immutable snapshot of the profile, and Estimate/EstimateBounds/
// HotRanges answer from the latest epoch with zero lock acquisitions —
// queries never contend with ingest. every is the offered-event cadence
// between publishes (0 selects the default, 64Ki events); the concurrent
// engine additionally publishes after every merge batch. Answers lag the
// live stream by at most one cadence; ReaderOf pins one epoch for
// multi-query consistency. Only meaningful for WithConcurrent and
// WithSharding — the single-goroutine and sampling engines have no
// concurrent readers to decouple, so combining is rejected.
func WithReadSnapshots(every uint64) Option {
	return func(b *builder) {
		b.readSnapshots = true
		b.snapshotEvery = every
	}
}

// WithAudit wires the online accuracy self-audit into the engine New
// builds: the auditor taps every event, shadows a sampled set of ranges
// with exact counts, and checks the engine's answers against them on each
// Auditor.Audit pass. Incompatible with WithSampling — the audit compares
// exact tapped truth against estimates, and a sampling engine's scaled
// estimates are not bound to the tapped stream.
func WithAudit(a *Auditor) Option {
	return func(b *builder) {
		if a == nil {
			b.errs = append(b.errs, errors.New("rap: WithAudit(nil): auditor must be non-nil"))
			return
		}
		b.audit = a
	}
}

// WithAdmission wires the randomized admission frontend into the engine
// New builds: every cold point must win a coin flip to enter the tree,
// refused mass is ledgered into upper bounds, and the frontend's watchdog
// escalates the admission toll under memory or churn pressure.
// Incompatible with WithSampling — the sampling engine scales estimates
// up, which would scale the unadmitted ledger's meaning away.
func WithAdmission(f *Admission) Option {
	return func(b *builder) {
		if f == nil {
			b.errs = append(b.errs, errors.New("rap: WithAdmission(nil): frontend must be non-nil"))
			return
		}
		b.admission = f
	}
}

// apply folds the options over the default config.
func apply(opts []Option) (*builder, error) {
	b := &builder{cfg: DefaultConfig()}
	for _, o := range opts {
		o(b)
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	return b, nil
}

// NewConfig builds and validates the Config the given options describe,
// for callers constructing engines directly.
func NewConfig(opts ...Option) (Config, error) {
	b, err := apply(opts)
	if err != nil {
		return Config{}, err
	}
	return b.cfg.Validate()
}

// New builds a Profiler from functional options. Engine selection:
// WithSharding picks the sharded engine, WithConcurrent the locked tree,
// WithSampling(k>1) the sampling tree, otherwise the plain
// single-goroutine Tree. Combinations that would stack engines
// (sharding+concurrent, sharding+sampling, concurrent+sampling) are
// rejected rather than silently picking one.
func New(opts ...Option) (Profiler, error) {
	b, err := apply(opts)
	if err != nil {
		return nil, err
	}
	cfg, err := b.cfg.Validate()
	if err != nil {
		return nil, err
	}
	sampling := b.sampleK > 1
	modes := 0
	for _, on := range []bool{b.shards > 0, b.concurrent, sampling} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return nil, fmt.Errorf("rap: options select %d engines (sharding=%v concurrent=%v sampling=%v); pick one",
			modes, b.shards > 0, b.concurrent, sampling)
	}
	if b.audit != nil && sampling {
		return nil, errors.New("rap: WithAudit cannot combine with WithSampling: scaled estimates are not bound to the tapped stream")
	}
	if b.admission != nil && sampling {
		return nil, errors.New("rap: WithAdmission cannot combine with WithSampling: scaled estimates cannot absorb the unadmitted ledger")
	}
	var p Profiler
	switch {
	case b.shards > 0:
		p, err = NewSharded(cfg, b.shards)
	case b.concurrent:
		p, err = NewConcurrent(cfg)
	case sampling:
		p, err = NewSampled(cfg, b.sampleK)
	default:
		p, err = NewTree(cfg)
	}
	if err != nil {
		return nil, err
	}
	if b.admission != nil {
		nShards := 1
		if b.shards > 0 {
			nShards = b.shards
		}
		if err := attachAdmission(b.admission, p, cfg, nShards); err != nil {
			return nil, err
		}
	}
	if b.audit != nil {
		if err := attachAudit(b.audit, p, cfg); err != nil {
			return nil, err
		}
	}
	if b.readSnapshots {
		switch e := p.(type) {
		case *Sharded:
			e.EnableReadSnapshots(b.snapshotEvery)
		case *ConcurrentTree:
			e.EnableReadSnapshots(b.snapshotEvery)
		default:
			return nil, fmt.Errorf("rap: WithReadSnapshots: engine %T has no concurrent read path to decouple; use WithConcurrent or WithSharding", p)
		}
	}
	return p, nil
}
