// Package rap is the public face of the RAP profiler: an implementation
// of "Profiling over Adaptive Ranges" (Mysore et al., CGO 2006), which
// maintains a small adaptive tree of bit-prefix ranges over a large value
// universe and answers range-count queries with a guaranteed error bound.
//
// The paper's symbols map onto configuration options as follows:
//
//	ε (epsilon)  WithEpsilon      relative error bound: any tracked range's
//	                              estimate undercounts by at most ε·n
//	b            WithBranching    branching factor of a split (power of two)
//	q            WithMergeRatio   geometric growth of the merge interval
//	H            (derived)        tree height, Config.Height(): log_b of the
//	                              universe size set by WithUniverse
//
// The simplest use is the functional-option constructor:
//
//	p, err := rap.New(rap.WithUniverse(1<<32), rap.WithEpsilon(0.01))
//	...
//	p.Add(addr)
//	low, high := p.EstimateBounds(lo, hi)
//	hot := p.HotRanges(0.10)
//
// New returns a Profiler backed by one of four engines, selected by
// options: a plain single-goroutine Tree, a mutex-wrapped ConcurrentTree
// (WithConcurrent), a SampledTree that applies 1-in-k sampling ahead of
// the tree (WithSampling), or a Sharded engine that fans events across
// per-shard trees and answers queries from their merged union
// (WithSharding). All four satisfy Profiler; all estimates are lower
// bounds with the paper's ε·n guarantee.
//
// The ingest and query halves of that surface are the Writer and Reader
// interfaces; Profiler is their (deprecated but fully supported) union.
// With WithReadSnapshots the concurrent and sharded engines publish
// immutable epoch snapshots and serve Reader queries from them without
// taking any locks; ReaderOf pins the current Epoch for multi-query
// consistency.
//
// Advanced callers can keep constructing engines directly from a Config
// literal — the types here are aliases of the internal ones, so the two
// styles interoperate.
package rap

import (
	"fmt"

	"rap/internal/admit"
	"rap/internal/audit"
	"rap/internal/core"
	"rap/internal/shard"
)

// Config parameterizes a profiler; see the field docs for the paper
// correspondence. Zero value is invalid — start from DefaultConfig or use
// New with options.
type Config = core.Config

// Stats is a point-in-time summary of an engine's tree(s).
type Stats = core.Stats

// HotRange is one range whose estimated share of the stream is at least
// the queried threshold θ.
type HotRange = core.HotRange

// NodeInfo describes one tracked range during a Tree.Walk.
type NodeInfo = core.NodeInfo

// Sample is one weighted event of a batch, the unit of the AddSamples
// bulk-ingest entry points.
type Sample = core.Sample

// Tree is the core single-goroutine profiler.
type Tree = core.Tree

// ConcurrentTree is a Tree behind one mutex, safe for concurrent use.
type ConcurrentTree = core.ConcurrentTree

// SampledTree applies deterministic 1-in-k sampling ahead of a Tree and
// scales estimates back up.
type SampledTree = core.SampledTree

// Sharded fans events across k per-shard trees (lock striping, pinned
// Handles) and answers queries from their merged union.
type Sharded = shard.Engine

// Handle is a cheap per-goroutine ingest endpoint of a Sharded engine.
type Handle = shard.Handle

// Hooks and the structural events it observes, for instrumentation.
type (
	Hooks           = core.Hooks
	SplitEvent      = core.SplitEvent
	MergeEvent      = core.MergeEvent
	MergeBatchEvent = core.MergeBatchEvent
)

// The online accuracy self-audit: an Auditor taps the event stream,
// keeps exact counts for a sampled set of ranges, and periodically checks
// the engine's Estimate/EstimateBounds answers against that ground truth.
// Build one with NewAuditor, wire it at construction with WithAudit, then
// drive passes with Auditor.Audit and read Auditor.Report.
type (
	Auditor          = audit.Auditor
	AuditOptions     = audit.Options
	AuditReport      = audit.Report
	AuditRangeReport = audit.RangeReport
)

// NewAuditor builds an accuracy auditor from options (the zero value
// selects all defaults). Pass it to New via WithAudit; an auditor wires to
// exactly one engine.
func NewAuditor(opts AuditOptions) *Auditor { return audit.New(opts) }

// The randomized admission frontend: a per-shard coin-flip gate ahead of
// the tree that makes structure-inflation attacks (floods of
// never-repeating keys) pay an admission toll, plus an overload watchdog
// that escalates the toll under memory or churn pressure. Refused mass is
// counted, folded into every EstimateBounds upper bound, and certified by
// the audit. Build one with NewAdmission, wire it at construction with
// WithAdmission, then read Admission.Stats.
type (
	Admission        = admit.Frontend
	AdmissionOptions = admit.Options
	AdmissionStats   = admit.Stats
	AdmissionLevel   = admit.Level
)

// NewAdmission builds an admission frontend from options (the zero value
// selects all defaults). Pass it to New via WithAdmission; a frontend
// wires to exactly one engine.
func NewAdmission(opts AdmissionOptions) *Admission { return admit.New(opts) }

// attachAdmission installs the frontend's per-shard gates on a freshly
// built engine: one gate per shard on the sharded engine, a single gate
// otherwise. The sampling engine is rejected earlier, in New — its scaled
// estimates cannot absorb an unadmitted ledger.
func attachAdmission(f *Admission, p Profiler, cfg Config, shards int) error {
	gates := f.Gates(cfg.UniverseBits, shards)
	if gates == nil {
		return fmt.Errorf("rap: WithAdmission: frontend already wired to an engine")
	}
	switch e := p.(type) {
	case *Sharded:
		e.SetShardAdmitters(func(i int) core.Admitter { return gates[i] })
	case *ConcurrentTree:
		e.SetAdmitter(gates[0])
	case *Tree:
		e.SetAdmitter(gates[0])
	default:
		return fmt.Errorf("rap: WithAdmission: engine %T cannot take an admission frontend", p)
	}
	return nil
}

// attachAudit taps a freshly built engine for the auditor: one tap per
// shard on the sharded engine, a single tap otherwise. Only engines whose
// estimates should equal the tapped stream can be audited — the sampling
// engine is rejected earlier, in New.
func attachAudit(a *Auditor, p Profiler, cfg Config) error {
	switch e := p.(type) {
	case *Sharded:
		taps, err := a.Attach(cfg, e, e.Shards())
		if err != nil {
			return err
		}
		e.SetShardTaps(func(i int) core.Tap { return taps[i] })
	case *ConcurrentTree:
		taps, err := a.Attach(cfg, e, 1)
		if err != nil {
			return err
		}
		e.SetTap(taps[0])
	case *Tree:
		taps, err := a.Attach(cfg, e, 1)
		if err != nil {
			return err
		}
		e.SetTap(taps[0])
	default:
		return fmt.Errorf("rap: WithAudit: engine %T cannot be audited", p)
	}
	return nil
}

// Errors surfaced by the facade's constructors and Merge/Restore paths.
var (
	// ErrConfigMismatch is returned by Tree.Merge when the two trees were
	// built with different configurations.
	ErrConfigMismatch = core.ErrConfigMismatch
	// ErrSelfMerge is returned by Tree.Merge when src and dst are the
	// same tree.
	ErrSelfMerge = core.ErrSelfMerge
	// ErrShardCount is returned by Sharded.Restore when a snapshot's
	// shard count does not match the engine's.
	ErrShardCount = shard.ErrShardCount
)

// DefaultConfig returns the paper's default operating point (64-bit
// universe, b=4, ε=1%, q=2).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewTree builds the single-goroutine engine from an explicit Config.
func NewTree(cfg Config) (*Tree, error) { return core.New(cfg) }

// MustNewTree is NewTree, panicking on an invalid Config.
func MustNewTree(cfg Config) *Tree { return core.MustNew(cfg) }

// NewConcurrent builds the mutex-wrapped engine from an explicit Config.
func NewConcurrent(cfg Config) (*ConcurrentTree, error) { return core.NewConcurrent(cfg) }

// NewSampled builds a 1-in-k sampling engine from an explicit Config.
func NewSampled(cfg Config, k uint64) (*SampledTree, error) { return core.NewSampled(cfg, k) }

// NewSharded builds a k-shard engine from an explicit Config; k <= 0
// selects GOMAXPROCS shards.
func NewSharded(cfg Config, k int) (*Sharded, error) { return shard.New(cfg, k) }

// Writer is the ingest surface every engine satisfies: feeding events
// in, serializing state out. Engines that support structural folding
// (Tree, ConcurrentTree, Sharded) additionally expose Merge with
// engine-specific signatures; it is not part of Writer because the
// sampling engine's scaled units have no coherent merge.
type Writer interface {
	// Add records one event at point p.
	Add(p uint64)
	// AddN records weight events at point p.
	AddN(p uint64, weight uint64)
	// AddBatch records a chunk of points in order, with per-point Add
	// semantics; engines run it through their batched fast path.
	AddBatch(points []uint64)
	// N returns the total event weight recorded.
	N() uint64
	// Snapshot serializes the engine's state for checkpointing or
	// hand-off; the matching engine-specific Restore/Unmarshal reads it.
	Snapshot() ([]byte, error)
	// Finalize runs a last merge pass and returns the final Stats.
	Finalize() Stats
}

// Reader is the query surface every engine satisfies. Estimates are
// lower bounds: for any tracked range the true count is in
// [Estimate, Estimate+ε·n]. An Epoch — the pinned consistent snapshot
// returned by ReaderOf, Handle.Reader, ConcurrentTree.Reader, and
// Sharded.Reader — is also a Reader, so query code can be written once
// against this interface and served either live or from a published
// epoch.
type Reader interface {
	// Estimate returns the lower-bound count for [lo, hi].
	Estimate(lo, hi uint64) uint64
	// EstimateBounds returns the certain range [low, high] bracketing the
	// true count of [lo, hi].
	EstimateBounds(lo, hi uint64) (low, high uint64)
	// HotRanges returns the maximal tracked ranges holding at least
	// theta·N() of the stream, most loaded first.
	HotRanges(theta float64) []HotRange
	// Stats summarizes tree size and maintenance counters.
	Stats() Stats
}

// Profiler is the combined ingest+query surface every engine satisfies.
//
// Deprecated: Profiler remains fully supported — every method keeps its
// exact signature and the four engines keep satisfying it — but new code
// should hold the narrower Writer and Reader facets: ingest loops a
// Writer, dashboards a Reader (or a pinned Epoch via ReaderOf for
// multi-query consistency). The split is what makes the epoch read path
// natural: readers no longer imply access to the write side.
type Profiler interface {
	Writer
	Reader
}

// Epoch is one immutable published snapshot of a profile: a consistent
// cut served without locks. Obtain one from ReaderOf, Handle.Reader,
// ConcurrentTree.Reader, or Sharded.Reader; query it like any Reader;
// Release it when done. See WithReadSnapshots.
type Epoch = core.Epoch

// EpochPublisher owns the epoch lifecycle of one engine (publish,
// pin/release, retirement accounting). Exposed for observability —
// ingest wires its rap_epoch_* metrics to it.
type EpochPublisher = core.EpochPublisher

// ReaderOf returns a pinned consistent epoch for engines with a
// consistent-cut read path (*ConcurrentTree, *Sharded: lock-free when
// WithReadSnapshots is enabled, a one-off cut otherwise; *Tree: a
// detached clone). The caller must Release the epoch. ok is false for
// engines without consistent cuts (the sampling engine).
func ReaderOf(p Reader) (e *Epoch, ok bool) {
	switch eng := p.(type) {
	case *ConcurrentTree:
		return eng.Reader(), true
	case *Sharded:
		return eng.Reader(), true
	case *Tree:
		return core.NewDetachedEpoch(eng.Clone()), true
	}
	return nil, false
}

// Compile-time checks that every engine satisfies Profiler (and thus
// Writer and Reader), and that a pinned Epoch serves the full Reader
// surface. Repeated in rap_test.go where they gate the test build.
var (
	_ Profiler = (*Tree)(nil)
	_ Profiler = (*ConcurrentTree)(nil)
	_ Profiler = (*SampledTree)(nil)
	_ Profiler = (*Sharded)(nil)
	_ Reader   = (*Epoch)(nil)
)
