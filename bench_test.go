// Benchmarks: one per paper table/figure (regenerating its measurement at
// a fixed per-iteration scale) plus micro-benchmarks of the core
// operations. Run everything with:
//
//	go test -bench=. -benchmem
package rap_test

import (
	"testing"

	"rap/internal/core"
	"rap/internal/experiments"
	"rap/internal/hw"
	"rap/internal/mini"
	"rap/internal/multidim"
	"rap/internal/stats"
	"rap/internal/trace"
	"rap/internal/workload"
)

const benchEvents = 200_000

func benchOptions() experiments.Options {
	return experiments.Options{Events: benchEvents, Seed: 1}
}

// --- One benchmark per table/figure ---

func BenchmarkFig2BranchAndRatioSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2()
		if r.ChosenBranch != 4 {
			b.Fatal("wrong operating point")
		}
	}
}

func BenchmarkFig3BoundSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig3(); len(r.Batched) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkFig5GzipValueTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOptions())
		if err != nil || len(r.HotRanges) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6MemoryTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchOptions())
		if err != nil || r.Timeline.MaxNodes == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MemoryPanels(b *testing.B) {
	o := benchOptions()
	o.Events = 50_000 // 28 runs per iteration
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8CodeErrors(b *testing.B) {
	o := benchOptions()
	o.Events = 50_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(experiments.CodeProfile, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8ValueErrors(b *testing.B) {
	o := benchOptions()
	o.Events = 50_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(experiments.ValueProfile, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9MissValueCurves(b *testing.B) {
	o := benchOptions()
	o.Events = 50_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ZeroLoadTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHWTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HW(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadlineBudgets(b *testing.B) {
	o := benchOptions()
	o.Events = 50_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Headline(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNarrowOperandProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Narrow(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMiniValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Mini(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensions(b *testing.B) {
	o := benchOptions()
	o.Events = 50_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Extensions(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core operation micro-benchmarks ---

func Benchmark2DTreeAdd(b *testing.B) {
	t2, err := multidim.New2D(multidim.DefaultConfig2D())
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<16, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2.Add(uint64(z.Rank()), uint64(z.Rank()))
	}
}

func BenchmarkSampledAdd(b *testing.B) {
	s, err := core.NewSampled(core.DefaultConfig(), 16)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<16, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(z.Rank()))
	}
}

func BenchmarkTreeAddZipf(b *testing.B) {
	t := core.MustNew(core.DefaultConfig())
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<20, 1.2)
	points := make([]uint64, 1<<16)
	for i := range points {
		points[i] = uint64(z.Rank())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Add(points[i&(1<<16-1)])
	}
	reportNodeBytes(b, t)
}

func BenchmarkTreeAddUniform(b *testing.B) {
	t := core.MustNew(core.DefaultConfig())
	rng := stats.NewSplitMix64(1)
	points := make([]uint64, 1<<16)
	for i := range points {
		points[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Add(points[i&(1<<16-1)])
	}
	reportNodeBytes(b, t)
}

func BenchmarkTreeAddCoalesced(b *testing.B) {
	// The hardware path: weighted updates from the stage-0 buffer.
	t := core.MustNew(core.DefaultConfig())
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<12, 1.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.AddN(uint64(z.Rank()), 16)
	}
	reportNodeBytes(b, t)
}

// reportNodeBytes attaches the memory-per-node metrics to an ingest
// benchmark: the paper's 16 B/node accounting model alongside the bytes
// this implementation actually holds per live node (node slab plus pooled
// adaptive-width counters), so density regressions show up in benchstat.
func reportNodeBytes(b *testing.B, t *core.Tree) {
	b.ReportMetric(float64(core.NodeBytes), "model-B/node")
	if n := t.NodeCount(); n > 0 {
		b.ReportMetric(float64(t.ArenaBytes())/float64(n), "arena-B/node")
	}
}

func BenchmarkHotRanges(b *testing.B) {
	t := core.MustNew(core.DefaultConfig())
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<20, 1.2)
	for i := 0; i < 500_000; i++ {
		t.Add(uint64(z.Rank()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hr := t.HotRanges(0.10); len(hr) == 0 {
			b.Fatal("no hot ranges")
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	t := core.MustNew(core.DefaultConfig())
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<20, 1.2)
	for i := 0; i < 500_000; i++ {
		t.Add(uint64(z.Rank()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Estimate(uint64(i)&0xFFFF, uint64(i)&0xFFFF+1<<20)
	}
}

func BenchmarkMarshal(b *testing.B) {
	t := core.MustNew(core.DefaultConfig())
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<20, 1.2)
	for i := 0; i < 500_000; i++ {
		t.Add(uint64(z.Rank()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCAMSearch(b *testing.B) {
	tc, err := hw.NewTCAM(32, 4096)
	if err != nil {
		b.Fatal(err)
	}
	tc.Insert(hw.Row{Prefix: 0, Plen: 0})
	rng := stats.NewSplitMix64(1)
	for i := 0; i < 4000; i++ {
		plen := int(rng.Uint64n(16))*2 + 2
		tc.Insert(hw.Row{Prefix: rng.Uint64(), Plen: plen})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tc.Search(rng.Uint64()); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkEnginePipeline(b *testing.B) {
	eng, err := hw.NewEngine(hw.DefaultConfig(), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewSplitMix64(1)
	z := stats.NewZipf(rng, 1<<16, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(trace.Event{Value: uint64(z.Rank()), Weight: 1})
	}
}

func BenchmarkCoalescingBuffer(b *testing.B) {
	gcc, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	src := gcc.Code(1, 0)
	buf := trace.NewCoalescingBuffer(src, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := buf.Next(); !ok {
			b.Fatal("source dried up")
		}
	}
}

func BenchmarkWorkloadCodeStream(b *testing.B) {
	gcc, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	src := gcc.Code(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("source dried up")
		}
	}
}

func BenchmarkMiniVM(b *testing.B) {
	prog, err := mini.LoadProgram("graph")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := mini.NewVM(prog, mini.Config{Seed: uint64(i)})
		if _, err := vm.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(vm.Steps()))
	}
}
